"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

Design constraints, in priority order:

1. **Hot-path cheap.**  Every protocol request, lock acquisition, and
   cache probe records a handful of events; the registry must cost
   single-digit microseconds per event.  Each metric instance carries its
   own small lock (never the registry lock) and records with one guarded
   arithmetic update.  When the registry is disabled every record method
   returns after a single attribute read.
2. **Thread-safe.**  The server handles requests from a thread pool;
   counts must be exact under contention (the concurrency tests assert
   no lost updates).
3. **No dependencies, no entropy.**  Plain stdlib, and nothing here ever
   touches ``os.urandom`` — the byte-identity contract reserves the
   entropy stream for the cipher.

The kill switch is the ``REPRO_METRICS`` environment variable: metrics
are **on by default**; ``REPRO_METRICS=0`` (or ``false``/``no``/``off``)
disables recording process-wide.  ``REGISTRY.set_enabled()`` flips the
same flag at runtime (the overhead benchmark uses it to compare on/off
without re-execing).
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Iterable

_FALSEY = {"0", "false", "no", "off"}

#: Default histogram buckets (seconds): tuned for request latencies from
#: tens of microseconds (cached bitset probes) to multi-second pipeline
#: stages.  Upper bounds are inclusive (Prometheus ``le`` semantics).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Buckets for size-like observations (bytes, cells, batch sizes).
SIZE_BUCKETS: tuple[float, ...] = (
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
)


def metrics_enabled(environ: "dict[str, str] | None" = None) -> bool:
    """The ``REPRO_METRICS`` policy: on unless explicitly turned off."""
    env = os.environ if environ is None else environ
    return str(env.get("REPRO_METRICS", "1")).strip().lower() not in _FALSEY


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted, stringified) label form used as the dict key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Common shape: a name, canonical labels, a lock, a registry flag."""

    __slots__ = ("name", "labels", "_lock", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._registry = registry

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


class Counter(_Metric):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, registry: "MetricsRegistry", name: str, labels: tuple):
        super().__init__(registry, name, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(_Metric):
    """A value that goes up and down (or is set outright)."""

    __slots__ = ("_value",)

    def __init__(self, registry: "MetricsRegistry", name: str, labels: tuple):
        super().__init__(registry, name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus ``le`` (inclusive) bounds.

    Bucket counts are stored per-bucket and cumulated at snapshot time;
    an observation above the last bound lands in the implicit ``+Inf``
    bucket.  Bounds are fixed at first creation of the (name, labels)
    series — later fetches reuse the existing series.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        labels: tuple,
        buckets: "Iterable[float] | None" = None,
    ):
        super().__init__(registry, name, labels)
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._registry._enabled:
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict[str, Any]:
        """Cumulative bucket counts, Prometheus-shaped."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
        cumulative: list[dict[str, Any]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": "+Inf", "count": total})
        return {"count": total, "sum": acc, "buckets": cumulative}

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """Thread-safe home of every metric series in the process.

    Fetching a series (``counter(name, **labels)``) always returns the
    same live object for the same (name, labels) pair, so callers may
    cache the handle across the enabled/disabled flip — the flag is
    checked per record, not per fetch.
    """

    def __init__(self, enabled: "bool | None" = None):
        self._enabled = metrics_enabled() if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- the kill switch ------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, on: bool) -> None:
        self._enabled = bool(on)

    # -- series accessors ----------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.get(key)
                if metric is None:
                    metric = Counter(self, name, key[1])
                    self._counters[key] = metric
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.get(key)
                if metric is None:
                    metric = Gauge(self, name, key[1])
                    self._gauges[key] = metric
        return metric

    def histogram(
        self, name: str, buckets: "Iterable[float] | None" = None, **labels: Any
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.get(key)
                if metric is None:
                    metric = Histogram(self, name, key[1], buckets)
                    self._histograms[key] = metric
        return metric

    # -- snapshot / reset ----------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """One JSON-safe document of every series' current state."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "enabled": self._enabled,
            "counters": [
                {"name": m.name, "labels": m.label_dict, "value": m.value}
                for m in counters
            ],
            "gauges": [
                {"name": m.name, "labels": m.label_dict, "value": m.value}
                for m in gauges
            ],
            "histograms": [
                {"name": m.name, "labels": m.label_dict, **m.snapshot()}
                for m in histograms
            ],
        }

    def reset(self) -> None:
        """Zero every series in place (handles held by callers stay live)."""
        with self._lock:
            metrics = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for metric in metrics:
            metric._reset()


#: The process-wide default registry every instrumentation point uses.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels: Any) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, buckets: "Iterable[float] | None" = None, **labels: Any) -> Histogram:
    return REGISTRY.histogram(name, buckets, **labels)


def snapshot() -> dict[str, Any]:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()


def enabled() -> bool:
    return REGISTRY.enabled

"""The paper's probabilistic cell cipher: ``e = <r, F_k(r) XOR p>``.

Section 2.3 and Section 3.2.2 describe the construction: to encrypt a
plaintext cell ``p``, draw a fresh random string ``r`` of length ``lambda``,
and output the pair ``(r, F_k(r) XOR p)`` where ``F`` is a pseudorandom
function keyed by ``k``.  Decryption recomputes ``F_k(r)`` and XORs it away.
Encrypting the same plaintext twice yields different ciphertexts (different
``r``), which is what lets F2 split one equivalence class into several
distinct ciphertext instances.

For F2's purposes the cipher exposes one extra knob: a *variant tag*.  F2
needs the copies of the same plaintext that belong to the same split to be
*identical* ciphertext values (so the server sees a frequency), while copies
belonging to different splits must be *distinct*.  Passing the same
``variant`` value reproduces the same ciphertext; different variants produce
different ciphertexts.  Internally the variant simply selects the random
string ``r`` deterministically from (key, plaintext, variant), which keeps
the construction identical to the paper's while making encryption
reproducible for the data owner.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.crypto.keys import SymmetricKey
from repro.crypto.prf import Prf, xor_bytes
from repro.exceptions import DecryptionError, EncryptionError
from repro.obs import metrics as _metrics

# Batch-shape metrics only — no timing, no entropy: the byte-identity
# contract pins the urandom stream, so observability must stay read-only
# here.  All no-ops under the REPRO_METRICS=0 kill switch.
_ENCRYPT_BATCH_CELLS = _metrics.histogram(
    "crypto.encrypt_batch_cells", buckets=_metrics.SIZE_BUCKETS
)
_DECRYPT_BATCH_CELLS = _metrics.histogram(
    "crypto.decrypt_batch_cells", buckets=_metrics.SIZE_BUCKETS
)
_CELLS_ENCRYPTED = _metrics.counter("crypto.cells_encrypted")
_CELLS_DECRYPTED = _metrics.counter("crypto.cells_decrypted")


@dataclass(frozen=True)
class Ciphertext:
    """A probabilistic ciphertext ``<r, F_k(r) XOR p>``.

    The object is hashable and comparable so it can live inside a
    :class:`repro.relational.table.Relation` cell and be grouped/counted by
    the server-side algorithms exactly like any other value.
    """

    nonce: bytes
    payload: bytes

    def __str__(self) -> str:
        return f"{self.nonce.hex()}:{self.payload.hex()}"

    @classmethod
    def from_text(cls, text: str) -> "Ciphertext":
        """Parse the compact ``nonce:payload`` hex form produced by ``str``."""
        try:
            nonce_hex, payload_hex = text.split(":", 1)
            return cls(bytes.fromhex(nonce_hex), bytes.fromhex(payload_hex))
        except ValueError as exc:
            raise DecryptionError(f"malformed ciphertext text: {text!r}") from exc

    def to_bytes(self) -> bytes:
        """Length-prefixed binary form: ``len(nonce) || nonce || payload``.

        The nonce length fits a single byte (the cipher caps it well below
        256); the payload length is implied by the enclosing frame, so the
        wire codec can embed ciphertexts without a second prefix.
        """
        if len(self.nonce) > 0xFF:
            raise EncryptionError("nonce longer than 255 bytes cannot be serialized")
        return bytes([len(self.nonce)]) + self.nonce + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ciphertext":
        """Inverse of :meth:`to_bytes` (consumes the whole buffer)."""
        if not data:
            raise DecryptionError("empty ciphertext buffer")
        nonce_length = data[0]
        if len(data) < 1 + nonce_length:
            raise DecryptionError("truncated ciphertext buffer")
        return cls(nonce=bytes(data[1 : 1 + nonce_length]), payload=bytes(data[1 + nonce_length :]))


class ProbabilisticCipher:
    """The PRF-based probabilistic cipher of Section 2.3.

    Parameters
    ----------
    key:
        The symmetric key produced by :class:`repro.crypto.keys.KeyGen`.
    nonce_length:
        Length (bytes) of the random string ``r``; the paper's ``lambda``.
    """

    def __init__(self, key: SymmetricKey, nonce_length: int = 16):
        if nonce_length < 8:
            raise EncryptionError("nonce_length below 8 bytes is not allowed")
        self._prf = Prf(key.material)
        self._nonce_prf = Prf(key.subkey("nonce-derivation").material)
        self._nonce_length = nonce_length

    @property
    def nonce_length(self) -> int:
        return self._nonce_length

    @property
    def key_material(self) -> bytes:
        """The raw key bytes (enough to reconstruct this cipher elsewhere).

        Process-pool workers rebuild an identical cipher from this — the
        nonce-derivation subkey is a pure function of the material, so the
        reconstruction encrypts byte-identically.
        """
        return self._prf.key

    def draw_nonces(self, count: int) -> list[bytes]:
        """Draw ``count`` fresh nonces as one bulk ``os.urandom`` read.

        ``urandom`` is a stream, so the slices equal ``count`` individual
        draws made in the same order — which is what lets the parent process
        fix the entropy plan before sharding deterministic work to workers.
        """
        if count <= 0:
            return []
        length = self._nonce_length
        blob = os.urandom(count * length)
        return [blob[start : start + length] for start in range(0, count * length, length)]

    # ------------------------------------------------------------------
    # Core API (Encrypt / Decrypt of Section 2.3)
    # ------------------------------------------------------------------
    def encrypt(self, plaintext: Any, variant: Any = None) -> Ciphertext:
        """Encrypt one cell value.

        Parameters
        ----------
        plaintext:
            The cell value; serialized with ``str`` (cells are opaque values).
        variant:
            ``None`` draws a fresh random nonce (pure probabilistic
            encryption — every call returns a new ciphertext).  Any other
            value derives the nonce deterministically from
            ``(key, plaintext, variant)`` so the same (plaintext, variant)
            pair always maps to the same ciphertext; F2 uses this to realise
            the "split into t unique instances" requirement of Definition 3.1.
        """
        message = _encode(plaintext)
        if variant is None:
            nonce = os.urandom(self._nonce_length)
        else:
            nonce = self._nonce_prf.evaluate(
                _encode(plaintext) + b"|variant|" + _encode(variant),
                self._nonce_length,
            )
        pad = self._prf.evaluate(nonce, len(message))
        return Ciphertext(nonce=nonce, payload=xor_bytes(pad, message))

    def decrypt(self, ciphertext: Ciphertext) -> str:
        """Recover the plaintext cell (as text) from a ciphertext."""
        if not isinstance(ciphertext, Ciphertext):
            raise DecryptionError(f"not a ciphertext: {ciphertext!r}")
        pad = self._prf.evaluate(ciphertext.nonce, len(ciphertext.payload))
        try:
            return xor_bytes(pad, ciphertext.payload).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecryptionError("decryption produced invalid UTF-8 (wrong key?)") from exc

    # ------------------------------------------------------------------
    # Batch API (the materialiser's hot path)
    # ------------------------------------------------------------------
    def encrypt_batch(
        self,
        items: Sequence[tuple[Any, Any]],
        nonces: "Sequence[bytes | None] | None" = None,
        backend=None,
    ) -> list[Ciphertext]:
        """Encrypt many ``(plaintext, variant)`` cells in one vectorised pass.

        Byte-identical to calling :meth:`encrypt` per item in order —
        including the entropy consumption: every ``variant=None`` item
        without a pre-supplied nonce draws from ``os.urandom`` in item
        order, as one bulk draw sliced per cell (``urandom`` is a stream,
        so the slices equal the per-call draws).

        Parameters
        ----------
        items:
            ``(plaintext, variant)`` pairs, exactly as :meth:`encrypt` takes
            them.
        nonces:
            Optional parallel sequence of pre-drawn nonces; a non-``None``
            entry is used verbatim (process-pool workers receive their
            random nonces this way so the parent alone touches the entropy
            stream).  ``None`` entries fall back to the normal draw/derive.
        backend:
            Optional :class:`repro.backend.base.ComputeBackend` whose
            ``xor_blocks`` applies the pads (NumPy vectorises it); ``None``
            uses the big-int reference XOR.
        """
        count = len(items)
        if nonces is not None and len(nonces) != count:
            raise EncryptionError("one pre-drawn nonce entry per item is required")
        messages = [_encode(plaintext) for plaintext, _ in items]

        # Nonce plan: deterministic variants batch through the nonce PRF;
        # the remaining draws come from one bulk urandom read, sliced in
        # item order.
        nonce_length = self._nonce_length
        out_nonces: list[bytes] = [b""] * count
        derive_messages: list[bytes] = []
        derive_slots: list[int] = []
        draw_slots: list[int] = []
        for index, (plaintext, variant) in enumerate(items):
            if nonces is not None and nonces[index] is not None:
                out_nonces[index] = nonces[index]
            elif variant is None:
                draw_slots.append(index)
            else:
                derive_slots.append(index)
                derive_messages.append(
                    messages[index] + b"|variant|" + _encode(variant)
                )
        if derive_slots:
            derived = self._nonce_prf.evaluate_many(derive_messages, nonce_length)
            for slot, nonce in zip(derive_slots, derived):
                out_nonces[slot] = nonce
        if draw_slots:
            blob = os.urandom(len(draw_slots) * nonce_length)
            for position, slot in enumerate(draw_slots):
                start = position * nonce_length
                out_nonces[slot] = blob[start : start + nonce_length]

        # Pads: one PRF evaluation per cell over the shared key schedule,
        # then a single XOR over the concatenated buffers.
        lengths = [len(message) for message in messages]
        pads = self._prf.evaluate_many(out_nonces, lengths)
        pad_buffer = b"".join(pads)
        message_buffer = b"".join(messages)
        if backend is not None:
            payload_buffer = backend.xor_blocks(pad_buffer, message_buffer)
        else:
            payload_buffer = xor_bytes(pad_buffer, message_buffer)

        ciphertexts: list[Ciphertext] = []
        append = ciphertexts.append
        cursor = 0
        for index in range(count):
            end = cursor + lengths[index]
            append(Ciphertext(nonce=out_nonces[index], payload=payload_buffer[cursor:end]))
            cursor = end
        _ENCRYPT_BATCH_CELLS.observe(count)
        _CELLS_ENCRYPTED.inc(count)
        return ciphertexts

    def decrypt_batch(
        self,
        ciphertexts: Sequence[Ciphertext],
        backend=None,
    ) -> list[str]:
        """Batched :meth:`decrypt`: recover many cells in one vectorised pass."""
        for ciphertext in ciphertexts:
            if not isinstance(ciphertext, Ciphertext):
                raise DecryptionError(f"not a ciphertext: {ciphertext!r}")
        lengths = [len(ciphertext.payload) for ciphertext in ciphertexts]
        pads = self._prf.evaluate_many(
            [ciphertext.nonce for ciphertext in ciphertexts], lengths
        )
        pad_buffer = b"".join(pads)
        payload_buffer = b"".join(ciphertext.payload for ciphertext in ciphertexts)
        if backend is not None:
            plain_buffer = backend.xor_blocks(pad_buffer, payload_buffer)
        else:
            plain_buffer = xor_bytes(pad_buffer, payload_buffer)
        try:
            texts: list[str] = []
            cursor = 0
            for length in lengths:
                texts.append(plain_buffer[cursor : cursor + length].decode("utf-8"))
                cursor += length
            _DECRYPT_BATCH_CELLS.observe(len(ciphertexts))
            _CELLS_DECRYPTED.inc(len(ciphertexts))
            return texts
        except UnicodeDecodeError as exc:
            raise DecryptionError("decryption produced invalid UTF-8 (wrong key?)") from exc


def _encode(value: Any) -> bytes:
    """Serialize a cell value for encryption (cells are opaque strings)."""
    if type(value) is str:
        return value.encode("utf-8")
    return str(value).encode("utf-8")

"""The paper's probabilistic cell cipher: ``e = <r, F_k(r) XOR p>``.

Section 2.3 and Section 3.2.2 describe the construction: to encrypt a
plaintext cell ``p``, draw a fresh random string ``r`` of length ``lambda``,
and output the pair ``(r, F_k(r) XOR p)`` where ``F`` is a pseudorandom
function keyed by ``k``.  Decryption recomputes ``F_k(r)`` and XORs it away.
Encrypting the same plaintext twice yields different ciphertexts (different
``r``), which is what lets F2 split one equivalence class into several
distinct ciphertext instances.

For F2's purposes the cipher exposes one extra knob: a *variant tag*.  F2
needs the copies of the same plaintext that belong to the same split to be
*identical* ciphertext values (so the server sees a frequency), while copies
belonging to different splits must be *distinct*.  Passing the same
``variant`` value reproduces the same ciphertext; different variants produce
different ciphertexts.  Internally the variant simply selects the random
string ``r`` deterministically from (key, plaintext, variant), which keeps
the construction identical to the paper's while making encryption
reproducible for the data owner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.crypto.keys import SymmetricKey
from repro.crypto.prf import Prf, xor_bytes
from repro.exceptions import DecryptionError, EncryptionError


@dataclass(frozen=True)
class Ciphertext:
    """A probabilistic ciphertext ``<r, F_k(r) XOR p>``.

    The object is hashable and comparable so it can live inside a
    :class:`repro.relational.table.Relation` cell and be grouped/counted by
    the server-side algorithms exactly like any other value.
    """

    nonce: bytes
    payload: bytes

    def __str__(self) -> str:
        return f"{self.nonce.hex()}:{self.payload.hex()}"

    @classmethod
    def from_text(cls, text: str) -> "Ciphertext":
        """Parse the compact ``nonce:payload`` hex form produced by ``str``."""
        try:
            nonce_hex, payload_hex = text.split(":", 1)
            return cls(bytes.fromhex(nonce_hex), bytes.fromhex(payload_hex))
        except ValueError as exc:
            raise DecryptionError(f"malformed ciphertext text: {text!r}") from exc

    def to_bytes(self) -> bytes:
        """Length-prefixed binary form: ``len(nonce) || nonce || payload``.

        The nonce length fits a single byte (the cipher caps it well below
        256); the payload length is implied by the enclosing frame, so the
        wire codec can embed ciphertexts without a second prefix.
        """
        if len(self.nonce) > 0xFF:
            raise EncryptionError("nonce longer than 255 bytes cannot be serialized")
        return bytes([len(self.nonce)]) + self.nonce + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ciphertext":
        """Inverse of :meth:`to_bytes` (consumes the whole buffer)."""
        if not data:
            raise DecryptionError("empty ciphertext buffer")
        nonce_length = data[0]
        if len(data) < 1 + nonce_length:
            raise DecryptionError("truncated ciphertext buffer")
        return cls(nonce=bytes(data[1 : 1 + nonce_length]), payload=bytes(data[1 + nonce_length :]))


class ProbabilisticCipher:
    """The PRF-based probabilistic cipher of Section 2.3.

    Parameters
    ----------
    key:
        The symmetric key produced by :class:`repro.crypto.keys.KeyGen`.
    nonce_length:
        Length (bytes) of the random string ``r``; the paper's ``lambda``.
    """

    def __init__(self, key: SymmetricKey, nonce_length: int = 16):
        if nonce_length < 8:
            raise EncryptionError("nonce_length below 8 bytes is not allowed")
        self._prf = Prf(key.material)
        self._nonce_prf = Prf(key.subkey("nonce-derivation").material)
        self._nonce_length = nonce_length

    @property
    def nonce_length(self) -> int:
        return self._nonce_length

    # ------------------------------------------------------------------
    # Core API (Encrypt / Decrypt of Section 2.3)
    # ------------------------------------------------------------------
    def encrypt(self, plaintext: Any, variant: Any = None) -> Ciphertext:
        """Encrypt one cell value.

        Parameters
        ----------
        plaintext:
            The cell value; serialized with ``str`` (cells are opaque values).
        variant:
            ``None`` draws a fresh random nonce (pure probabilistic
            encryption — every call returns a new ciphertext).  Any other
            value derives the nonce deterministically from
            ``(key, plaintext, variant)`` so the same (plaintext, variant)
            pair always maps to the same ciphertext; F2 uses this to realise
            the "split into t unique instances" requirement of Definition 3.1.
        """
        message = _encode(plaintext)
        if variant is None:
            nonce = os.urandom(self._nonce_length)
        else:
            nonce = self._nonce_prf.evaluate(
                _encode(plaintext) + b"|variant|" + _encode(variant),
                self._nonce_length,
            )
        pad = self._prf.evaluate(nonce, len(message))
        return Ciphertext(nonce=nonce, payload=xor_bytes(pad, message))

    def decrypt(self, ciphertext: Ciphertext) -> str:
        """Recover the plaintext cell (as text) from a ciphertext."""
        if not isinstance(ciphertext, Ciphertext):
            raise DecryptionError(f"not a ciphertext: {ciphertext!r}")
        pad = self._prf.evaluate(ciphertext.nonce, len(ciphertext.payload))
        try:
            return xor_bytes(pad, ciphertext.payload).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecryptionError("decryption produced invalid UTF-8 (wrong key?)") from exc


def _encode(value: Any) -> bytes:
    """Serialize a cell value for encryption (cells are opaque strings)."""
    if type(value) is str:
        return value.encode("utf-8")
    return str(value).encode("utf-8")

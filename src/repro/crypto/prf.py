"""Pseudorandom function used by the probabilistic and deterministic ciphers.

The paper's cipher needs a keyed pseudorandom function ``F_k`` whose output is
XOR-ed with the plaintext.  HMAC-SHA256 in counter mode is the standard
construction: it is a PRF under the usual assumptions, available in the Python
standard library, and extensible to arbitrary output lengths.
"""

from __future__ import annotations

import hmac
from collections.abc import Sequence


class Prf:
    """HMAC-SHA256 based pseudorandom function with arbitrary output length."""

    _BLOCK_BYTES = 32

    def __init__(self, key: bytes):
        if not key:
            raise ValueError("the PRF key must be non-empty")
        self._key = bytes(key)
        # Precomputed key schedule: the HMAC inner/outer pads are derived
        # from the key once and reused via ``copy()`` by ``evaluate_many``,
        # so a batch pays the key setup a single time instead of per cell.
        self._template = hmac.new(self._key, digestmod="sha256")

    @property
    def key(self) -> bytes:
        return self._key

    def evaluate(self, message: bytes, output_length: int) -> bytes:
        """Return ``F_k(message)`` truncated/extended to ``output_length`` bytes.

        Outputs longer than one HMAC block are produced in counter mode:
        ``HMAC(k, message || counter)`` for counter = 0, 1, ... — each block is
        an independent PRF evaluation, so the concatenation is still
        pseudorandom.
        """
        if output_length < 0:
            raise ValueError("output_length must be non-negative")
        if output_length <= self._BLOCK_BYTES:
            # One-shot C path; bytes identical to the counter-mode loop below.
            block = hmac.digest(self._key, message + b"\x00\x00\x00\x00", "sha256")
            return block[:output_length]
        blocks = []
        produced = 0
        counter = 0
        while produced < output_length:
            block = hmac.digest(self._key, message + counter.to_bytes(4, "big"), "sha256")
            blocks.append(block)
            produced += len(block)
            counter += 1
        return b"".join(blocks)[:output_length]

    def evaluate_many(
        self,
        messages: Sequence[bytes],
        output_lengths: "int | Sequence[int]",
    ) -> list[bytes]:
        """Batched :meth:`evaluate`: one PRF output per message.

        ``output_lengths`` is either one length shared by every message or a
        parallel sequence of per-message lengths.  The outputs are
        byte-identical to calling :meth:`evaluate` per message; the batch
        only amortises the HMAC key schedule (one precomputed template,
        ``copy()`` per message) and the Python call overhead.
        """
        if isinstance(output_lengths, int):
            lengths: Sequence[int] = [output_lengths] * len(messages)
        else:
            lengths = output_lengths
            if len(lengths) != len(messages):
                raise ValueError("one output length per message is required")
        copy = self._template.copy
        block_bytes = self._BLOCK_BYTES
        suffix = b"\x00\x00\x00\x00"
        outputs: list[bytes] = []
        append = outputs.append
        for message, length in zip(messages, lengths):
            if length < 0:
                raise ValueError("output_length must be non-negative")
            if length <= block_bytes:
                mac = copy()
                mac.update(message)
                mac.update(suffix)
                append(mac.digest()[:length])
                continue
            blocks = []
            produced = 0
            counter = 0
            while produced < length:
                mac = copy()
                mac.update(message)
                mac.update(counter.to_bytes(4, "big"))
                block = mac.digest()
                blocks.append(block)
                produced += len(block)
                counter += 1
            append(b"".join(blocks)[:length])
        return outputs

    def evaluate_int(self, message: bytes, bits: int) -> int:
        """Return ``F_k(message)`` as an integer with at most ``bits`` bits."""
        num_bytes = (bits + 7) // 8
        raw = int.from_bytes(self.evaluate(message, num_bytes), "big")
        return raw >> (num_bytes * 8 - bits) if bits % 8 else raw


def xor_bytes(first: bytes, second: bytes) -> bytes:
    """Byte-wise XOR of two equal-length byte strings."""
    if len(first) != len(second):
        raise ValueError("xor_bytes requires equal-length inputs")
    length = len(first)
    return (int.from_bytes(first, "big") ^ int.from_bytes(second, "big")).to_bytes(length, "big")

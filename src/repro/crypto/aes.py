"""A from-scratch AES-128 block cipher.

The paper's deterministic baseline uses ``javax.crypto`` AES.  To keep this
repository dependency-free the block cipher is implemented here directly from
FIPS-197: key expansion, SubBytes/ShiftRows/MixColumns/AddRoundKey and their
inverses, operating on 16-byte blocks.  ECB helpers are provided because the
baseline encrypts each (padded) cell independently and deterministically —
exactly the property the frequency-analysis attack exploits.

This implementation favours clarity over speed; it is used by the baseline
benchmark (Figure 8) and by tests that check it against the FIPS-197 vectors.
"""

from __future__ import annotations

from repro.exceptions import EncryptionError

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
    0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
    0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
    0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
    0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
    0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
    0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
    0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
    0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
    0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
    0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _index, _value in enumerate(_SBOX):
    _INV_SBOX[_value] = _index

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_multiply(a: int, b: int) -> int:
    """Multiply two bytes in GF(2^8) with the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class Aes128:
    """AES-128 over 16-byte blocks, plus minimal ECB helpers."""

    BLOCK_SIZE = 16
    ROUNDS = 10

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise EncryptionError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)

    # ------------------------------------------------------------------
    # Key schedule
    # ------------------------------------------------------------------
    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (Aes128.ROUNDS + 1)):
            word = list(words[i - 1])
            if i % 4 == 0:
                word = word[1:] + word[:1]
                word = [_SBOX[b] for b in word]
                word[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], word)])
        return [
            [byte for word in words[4 * r : 4 * r + 4] for byte in word]
            for r in range(Aes128.ROUNDS + 1)
        ]

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != self.BLOCK_SIZE:
            raise EncryptionError("AES block must be exactly 16 bytes")
        state = list(block)
        state = self._add_round_key(state, self._round_keys[0])
        for round_number in range(1, self.ROUNDS):
            state = [_SBOX[b] for b in state]
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = self._add_round_key(state, self._round_keys[round_number])
        state = [_SBOX[b] for b in state]
        state = self._shift_rows(state)
        state = self._add_round_key(state, self._round_keys[self.ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != self.BLOCK_SIZE:
            raise EncryptionError("AES block must be exactly 16 bytes")
        state = list(block)
        state = self._add_round_key(state, self._round_keys[self.ROUNDS])
        for round_number in range(self.ROUNDS - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = [_INV_SBOX[b] for b in state]
            state = self._add_round_key(state, self._round_keys[round_number])
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = [_INV_SBOX[b] for b in state]
        state = self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    # ------------------------------------------------------------------
    # ECB helpers (cells are independently padded and encrypted)
    # ------------------------------------------------------------------
    def encrypt_ecb(self, message: bytes) -> bytes:
        if len(message) % self.BLOCK_SIZE:
            raise EncryptionError("ECB input must be a multiple of the block size")
        return b"".join(
            self.encrypt_block(message[i : i + self.BLOCK_SIZE])
            for i in range(0, len(message), self.BLOCK_SIZE)
        )

    def decrypt_ecb(self, message: bytes) -> bytes:
        if len(message) % self.BLOCK_SIZE:
            raise EncryptionError("ECB input must be a multiple of the block size")
        return b"".join(
            self.decrypt_block(message[i : i + self.BLOCK_SIZE])
            for i in range(0, len(message), self.BLOCK_SIZE)
        )

    # ------------------------------------------------------------------
    # Round transformations (column-major state layout, as in FIPS-197)
    # ------------------------------------------------------------------
    @staticmethod
    def _add_round_key(state: list[int], round_key: list[int]) -> list[int]:
        return [b ^ k for b, k in zip(state, round_key)]

    @staticmethod
    def _shift_rows(state: list[int]) -> list[int]:
        # state[i] holds row (i % 4) of column (i // 4).
        result = list(state)
        for row in range(1, 4):
            column_values = [state[row + 4 * col] for col in range(4)]
            shifted = column_values[row:] + column_values[:row]
            for col in range(4):
                result[row + 4 * col] = shifted[col]
        return result

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> list[int]:
        result = list(state)
        for row in range(1, 4):
            column_values = [state[row + 4 * col] for col in range(4)]
            shifted = column_values[-row:] + column_values[:-row]
            for col in range(4):
                result[row + 4 * col] = shifted[col]
        return result

    @staticmethod
    def _mix_columns(state: list[int]) -> list[int]:
        result = list(state)
        for col in range(4):
            column = state[4 * col : 4 * col + 4]
            result[4 * col + 0] = (
                _gf_multiply(column[0], 2) ^ _gf_multiply(column[1], 3) ^ column[2] ^ column[3]
            )
            result[4 * col + 1] = (
                column[0] ^ _gf_multiply(column[1], 2) ^ _gf_multiply(column[2], 3) ^ column[3]
            )
            result[4 * col + 2] = (
                column[0] ^ column[1] ^ _gf_multiply(column[2], 2) ^ _gf_multiply(column[3], 3)
            )
            result[4 * col + 3] = (
                _gf_multiply(column[0], 3) ^ column[1] ^ column[2] ^ _gf_multiply(column[3], 2)
            )
        return result

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> list[int]:
        result = list(state)
        for col in range(4):
            column = state[4 * col : 4 * col + 4]
            result[4 * col + 0] = (
                _gf_multiply(column[0], 14) ^ _gf_multiply(column[1], 11)
                ^ _gf_multiply(column[2], 13) ^ _gf_multiply(column[3], 9)
            )
            result[4 * col + 1] = (
                _gf_multiply(column[0], 9) ^ _gf_multiply(column[1], 14)
                ^ _gf_multiply(column[2], 11) ^ _gf_multiply(column[3], 13)
            )
            result[4 * col + 2] = (
                _gf_multiply(column[0], 13) ^ _gf_multiply(column[1], 9)
                ^ _gf_multiply(column[2], 14) ^ _gf_multiply(column[3], 11)
            )
            result[4 * col + 3] = (
                _gf_multiply(column[0], 11) ^ _gf_multiply(column[1], 13)
                ^ _gf_multiply(column[2], 9) ^ _gf_multiply(column[3], 14)
            )
        return result

"""Deterministic cell encryption (the AES baseline role).

The paper's first baseline encrypts every cell with deterministic AES: the
same plaintext always maps to the same ciphertext, which trivially preserves
FDs but leaks the exact frequency distribution (Figure 1 (b)).  This module
provides that baseline as a cipher over opaque cell values.  Two backends are
available:

* ``"prf"`` (default) — a deterministic PRF construction (synthetic-IV style):
  the nonce is derived from the plaintext itself, so equal plaintexts yield
  equal ciphertexts.  Fast, and sufficient for all correctness experiments.
* ``"aes"`` — the from-scratch AES-128 block cipher of
  :mod:`repro.crypto.aes` in ECB mode over padded cells, used by the Figure 8
  baseline benchmark so that the deterministic baseline pays a realistic
  block-cipher cost.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.aes import Aes128
from repro.crypto.keys import SymmetricKey
from repro.crypto.prf import Prf, xor_bytes
from repro.crypto.probabilistic import Ciphertext, _encode
from repro.exceptions import DecryptionError, EncryptionError


class DeterministicCipher:
    """Deterministic cell cipher: equal plaintexts map to equal ciphertexts."""

    def __init__(self, key: SymmetricKey, backend: str = "prf", nonce_length: int = 16):
        if backend not in {"prf", "aes"}:
            raise EncryptionError(f"unknown deterministic backend: {backend!r}")
        self._backend = backend
        self._nonce_length = nonce_length
        self._prf = Prf(key.material)
        self._nonce_prf = Prf(key.subkey("deterministic-nonce").material)
        self._aes = Aes128(key.subkey("aes-backend").material[:16]) if backend == "aes" else None

    @property
    def backend(self) -> str:
        return self._backend

    def encrypt(self, plaintext: Any) -> Ciphertext:
        """Encrypt one cell value deterministically."""
        message = _encode(plaintext)
        if self._backend == "aes":
            assert self._aes is not None
            return Ciphertext(nonce=b"", payload=self._aes.encrypt_ecb(_pad(message)))
        nonce = self._nonce_prf.evaluate(message, self._nonce_length)
        pad = self._prf.evaluate(nonce, len(message))
        return Ciphertext(nonce=nonce, payload=xor_bytes(pad, message))

    def decrypt(self, ciphertext: Ciphertext) -> str:
        """Recover the plaintext cell text."""
        if not isinstance(ciphertext, Ciphertext):
            raise DecryptionError(f"not a ciphertext: {ciphertext!r}")
        if self._backend == "aes":
            assert self._aes is not None
            return _unpad(self._aes.decrypt_ecb(ciphertext.payload)).decode("utf-8")
        pad = self._prf.evaluate(ciphertext.nonce, len(ciphertext.payload))
        try:
            return xor_bytes(pad, ciphertext.payload).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecryptionError("decryption produced invalid UTF-8 (wrong key?)") from exc


def _pad(message: bytes, block: int = 16) -> bytes:
    """PKCS#7 padding to a multiple of the AES block size."""
    remainder = block - (len(message) % block)
    return message + bytes([remainder]) * remainder


def _unpad(message: bytes) -> bytes:
    """Strip PKCS#7 padding."""
    if not message:
        raise DecryptionError("cannot unpad an empty message")
    pad_length = message[-1]
    if pad_length < 1 or pad_length > 16 or len(message) < pad_length:
        raise DecryptionError("invalid padding (wrong key or corrupted ciphertext)")
    if message[-pad_length:] != bytes([pad_length]) * pad_length:
        raise DecryptionError("invalid padding (wrong key or corrupted ciphertext)")
    return message[:-pad_length]

"""Cryptographic substrate.

The paper builds F2 on a private probabilistic cipher based on pseudorandom
functions (Section 2.3): the ciphertext of a plaintext ``p`` is
``e = <r, F_k(r) XOR p>`` for a fresh random string ``r``.  Its evaluation
additionally compares against two cell-level baselines: deterministic AES and
probabilistic Paillier (Section 5.1).  Everything here is implemented from
scratch on the standard library so that the repository is self-contained:

* :mod:`~repro.crypto.prf` — HMAC-SHA256 pseudorandom function.
* :mod:`~repro.crypto.keys` — `KeyGen` for symmetric and Paillier keys.
* :mod:`~repro.crypto.probabilistic` — the paper's probabilistic cipher.
* :mod:`~repro.crypto.deterministic` — deterministic cell encryption (the AES
  baseline role), with a synthetic-value mode used for fake/artificial cells.
* :mod:`~repro.crypto.aes` — a from-scratch AES-128 block cipher used by the
  deterministic baseline benchmark.
* :mod:`~repro.crypto.paillier` — the Paillier public-key cryptosystem
  (probabilistic baseline of Figure 8).
"""

from repro.crypto.deterministic import DeterministicCipher
from repro.crypto.keys import KeyGen, SymmetricKey
from repro.crypto.paillier import PaillierCipher, PaillierKeyPair
from repro.crypto.prf import Prf
from repro.crypto.probabilistic import Ciphertext, ProbabilisticCipher

__all__ = [
    "Ciphertext",
    "DeterministicCipher",
    "KeyGen",
    "PaillierCipher",
    "PaillierKeyPair",
    "Prf",
    "ProbabilisticCipher",
    "SymmetricKey",
]

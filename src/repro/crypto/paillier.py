"""The Paillier cryptosystem (probabilistic baseline of Figure 8).

The paper's second baseline encrypts every cell with Paillier (via the UTD
Paillier Threshold Encryption Toolbox).  Paillier is a probabilistic
public-key scheme, so it hides frequencies, but it destroys FDs and — as
Figure 8 shows — it is orders of magnitude slower than F2's symmetric
construction.  This module implements textbook Paillier from scratch:

* key generation with two random primes (Miller–Rabin tested),
* ``Enc(m) = g^m * r^n mod n^2`` with a fresh random ``r`` per call,
* ``Dec(c) = L(c^lambda mod n^2) * mu mod n``,
* the additive homomorphism (useful for the homomorphic-aggregation example).

Cells are encrypted by hashing/encoding their text into an integer smaller
than ``n``; the baseline only needs timing-realistic probabilistic public-key
encryption, not recoverable cell text, but encode/decode of short cells is
supported and exact.
"""

from __future__ import annotations

import math
import secrets  # repro: allow(entropy-discipline): Paillier key/blinding material must be OS-random; probabilistic by design, outside the byte-identity contract
from dataclasses import dataclass
from typing import Any

from repro.exceptions import DecryptionError, EncryptionError

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
    73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151,
]


# repro: allow(entropy-discipline): Miller-Rabin witnesses come from OS randomness on purpose
def _is_probable_prime(candidate: int, rounds: int = 40, rng: secrets.SystemRandom | None = None) -> bool:
    """Miller–Rabin primality test."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    rng = rng or secrets.SystemRandom()  # repro: allow(entropy-discipline): primality witnesses must be unpredictable
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


# repro: allow(entropy-discipline): prime generation draws OS randomness by definition
def _random_prime(bits: int, rng: secrets.SystemRandom) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng=rng):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public parameters ``(n, g)`` with ``g = n + 1``."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def g(self) -> int:
        return self.n + 1


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private parameters ``(lambda, mu)``."""

    lam: int
    mu: int


@dataclass(frozen=True)
class PaillierKeyPair:
    """A Paillier public/private key pair."""

    public: PaillierPublicKey
    private: PaillierPrivateKey

    @classmethod
    def generate(cls, bits: int = 512) -> "PaillierKeyPair":
        """Generate a key pair with an ``bits``-bit modulus.

        The default of 512 bits keeps the benchmark runtimes laptop-friendly
        while preserving the paper's qualitative result (Paillier is orders of
        magnitude slower than the symmetric ciphers); pass 1024 or 2048 for
        realistic key sizes.
        """
        if bits < 128:
            raise EncryptionError("Paillier modulus below 128 bits is not allowed")
        # repro: allow(entropy-discipline): key generation is the one place that must be non-deterministic
        rng = secrets.SystemRandom()
        half = bits // 2
        while True:
            p = _random_prime(half, rng)
            q = _random_prime(bits - half, rng)
            if p != q and math.gcd(p * q, (p - 1) * (q - 1)) == 1:
                break
        n = p * q
        lam = math.lcm(p - 1, q - 1)
        public = PaillierPublicKey(n=n)
        mu = pow(_l_function(pow(public.g, lam, public.n_squared), n), -1, n)
        return cls(public=public, private=PaillierPrivateKey(lam=lam, mu=mu))


def _l_function(x: int, n: int) -> int:
    return (x - 1) // n


class PaillierCipher:
    """Cell-level Paillier encryption with the additive homomorphism."""

    def __init__(self, keys: PaillierKeyPair):
        self._keys = keys
        # repro: allow(entropy-discipline): Paillier blinding factors r must be unpredictable per encryption
        self._rng = secrets.SystemRandom()

    @property
    def public_key(self) -> PaillierPublicKey:
        return self._keys.public

    # ------------------------------------------------------------------
    # Integer API
    # ------------------------------------------------------------------
    def encrypt_int(self, message: int) -> int:
        """Encrypt an integer ``0 <= message < n``."""
        n = self._keys.public.n
        if not 0 <= message < n:
            raise EncryptionError("Paillier plaintext out of range")
        n_squared = self._keys.public.n_squared
        while True:
            r = self._rng.randrange(1, n)
            if math.gcd(r, n) == 1:
                break
        return (pow(self._keys.public.g, message, n_squared) * pow(r, n, n_squared)) % n_squared

    def decrypt_int(self, ciphertext: int) -> int:
        """Decrypt an integer ciphertext."""
        n = self._keys.public.n
        n_squared = self._keys.public.n_squared
        if not 0 <= ciphertext < n_squared:
            raise DecryptionError("Paillier ciphertext out of range")
        x = pow(ciphertext, self._keys.private.lam, n_squared)
        return (_l_function(x, n) * self._keys.private.mu) % n

    def add(self, first: int, second: int) -> int:
        """Homomorphic addition: Enc(a) * Enc(b) = Enc(a + b)."""
        return (first * second) % self._keys.public.n_squared

    # ------------------------------------------------------------------
    # Cell API (text values)
    # ------------------------------------------------------------------
    def encrypt_cell(self, value: Any) -> int:
        """Encrypt an arbitrary short cell value (text-encoded)."""
        message = int.from_bytes(str(value).encode("utf-8"), "big")
        if message >= self._keys.public.n:
            raise EncryptionError("cell value too long for the Paillier modulus")
        return self.encrypt_int(message)

    def decrypt_cell(self, ciphertext: int) -> str:
        """Recover the text of a cell encrypted with :meth:`encrypt_cell`."""
        message = self.decrypt_int(ciphertext)
        length = (message.bit_length() + 7) // 8
        return message.to_bytes(length, "big").decode("utf-8")

"""Key generation (the ``KeyGen`` algorithm of Section 2.3).

``KeyGen(lambda)`` produces the secret material the data owner keeps locally:
a symmetric key for the PRF-based ciphers, plus — for the Paillier baseline —
a public/private key pair.  Keys can be generated from the OS entropy source
or derived deterministically from a seed (useful for reproducible tests and
benchmarks; the security analysis in the paper never depends on *which* key is
used, only on the adversary not knowing it).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass


@dataclass(frozen=True)
class SymmetricKey:
    """A symmetric key for the PRF-based ciphers."""

    material: bytes

    def __post_init__(self) -> None:
        if not self.material:
            raise ValueError("key material must be non-empty")

    @property
    def bits(self) -> int:
        return len(self.material) * 8

    def subkey(self, label: str) -> "SymmetricKey":
        """Derive an independent subkey for a labelled purpose.

        F2 uses one logical key but distinct cipher instances (per attribute,
        plus internal bookkeeping); deriving subkeys with a hash keeps the
        instances independent while the owner still stores a single secret.
        """
        digest = hashlib.sha256(self.material + b"|" + label.encode("utf-8")).digest()
        return SymmetricKey(digest)


class KeyGen:
    """Factory for the keys used across the library."""

    DEFAULT_SECURITY_PARAMETER = 128

    @staticmethod
    def symmetric(security_parameter: int = DEFAULT_SECURITY_PARAMETER) -> SymmetricKey:
        """Generate a fresh random symmetric key of ``security_parameter`` bits."""
        if security_parameter < 64:
            raise ValueError("security parameter below 64 bits is not allowed")
        return SymmetricKey(os.urandom((security_parameter + 7) // 8))

    @staticmethod
    def symmetric_from_seed(
        seed: int | str | bytes,
        security_parameter: int = DEFAULT_SECURITY_PARAMETER,
    ) -> SymmetricKey:
        """Derive a deterministic symmetric key from a seed (for reproducibility)."""
        if isinstance(seed, int):
            seed_bytes = seed.to_bytes(16, "big", signed=True)
        elif isinstance(seed, str):
            seed_bytes = seed.encode("utf-8")
        else:
            seed_bytes = bytes(seed)
        material = hashlib.sha256(b"f2-symmetric-key|" + seed_bytes).digest()
        num_bytes = (security_parameter + 7) // 8
        while len(material) < num_bytes:
            material += hashlib.sha256(material).digest()
        return SymmetricKey(material[:num_bytes])

"""repro: a reproduction of F2 — frequency-hiding, FD-preserving encryption.

This package implements the system described in *Frequency-Hiding
Dependency-Preserving Encryption for Outsourced Databases* (Dong & Wang,
ICDE 2017): a cell-level encryption scheme that lets a data owner outsource a
relational table to an untrusted server such that

* the server can still discover the table's functional dependencies (they are
  exactly preserved), while
* the value-frequency distribution is hidden, with a provable
  ``alpha``-security bound against frequency-analysis attacks.

Quickstart — the session API models the paper's two-party protocol:

>>> from repro import DataOwner, F2Config, Relation, ServiceProvider
>>> table = Relation(
...     ["Zipcode", "City", "Street"],
...     [["07030", "Hoboken", "Washington"], ["07030", "Hoboken", "Hudson"],
...      ["07302", "Jersey City", "Grove"], ["07302", "Jersey City", "Newark"]],
... )
>>> owner = DataOwner.from_seed(42, config=F2Config(alpha=0.5))
>>> provider = ServiceProvider()
>>> encrypted = owner.outsource(table)
>>> rows_shipped = provider.receive(encrypted.server_view())
>>> discovery = provider.discover_fds()
>>> owner.validate_fds(discovery.fds)
True
>>> updated = owner.insert_rows([["07302", "Jersey City", "Montgomery"]])
>>> recovered = owner.decrypt()

The legacy one-shot facade is still available:

>>> from repro import F2Scheme
>>> encrypted = F2Scheme(config=F2Config(alpha=0.5)).encrypt(table)

The top-level namespace re-exports the objects most users need; the
subpackages (:mod:`repro.api`, :mod:`repro.relational`, :mod:`repro.fd`,
:mod:`repro.crypto`, :mod:`repro.core`, :mod:`repro.attack`,
:mod:`repro.datasets`, :mod:`repro.bench`) hold the full API.
"""

from repro.api.auth import Credential, ErrorCode, TenantRegistry
from repro.api.pipeline import EncryptionPipeline, StageHook, StageRecorder
from repro.api.protocol import (
    ProtocolClient,
    ProtocolServer,
    SocketProtocolServer,
    SocketTransport,
)
from repro.api.session import DataOwner, RemoteOwnerSession, ServiceProvider, run_protocol
from repro.backend import available_backends, get_backend
from repro.core.config import F2Config
from repro.core.encrypted import EncryptedTable
from repro.core.scheme import F2Scheme
from repro.core.security import verify_alpha_security
from repro.crypto.keys import KeyGen
from repro.exceptions import (
    BackendUnavailableError,
    ConfigurationError,
    DecryptionError,
    EncryptionError,
    ReproError,
    SecurityViolation,
)
from repro.query import (
    And,
    Eq,
    In,
    Not,
    Or,
    QueryLeakageReport,
    QueryPlan,
    parse_predicate,
)
from repro.relational.schema import Schema
from repro.relational.table import Relation

__version__ = "1.5.0"

__all__ = [
    "And",
    "BackendUnavailableError",
    "ConfigurationError",
    "Credential",
    "DataOwner",
    "DecryptionError",
    "EncryptedTable",
    "EncryptionError",
    "EncryptionPipeline",
    "Eq",
    "ErrorCode",
    "F2Config",
    "F2Scheme",
    "In",
    "KeyGen",
    "Not",
    "Or",
    "ProtocolClient",
    "ProtocolServer",
    "QueryLeakageReport",
    "QueryPlan",
    "Relation",
    "RemoteOwnerSession",
    "ReproError",
    "Schema",
    "SecurityViolation",
    "ServiceProvider",
    "SocketProtocolServer",
    "SocketTransport",
    "StageHook",
    "TenantRegistry",
    "StageRecorder",
    "available_backends",
    "get_backend",
    "parse_predicate",
    "run_protocol",
    "verify_alpha_security",
    "__version__",
]

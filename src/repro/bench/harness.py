"""Measurement helpers shared by all benchmark sweeps.

Everything here measures the same quantities the paper reports — per-step
encryption time, total encryption time of F2 and of the two baselines, FD
discovery time — on the synthetic substitutes of the paper's datasets.
Absolute numbers differ from the paper (pure Python on laptop-scale data vs.
Java on GB-scale data); the *shapes* are what the benchmarks reproduce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.api.pipeline import EncryptionPipeline, StageRecord, StageRecorder
from repro.core.config import F2Config
from repro.core.encrypted import EncryptedTable
from repro.crypto.deterministic import DeterministicCipher
from repro.crypto.keys import KeyGen
from repro.crypto.paillier import PaillierCipher, PaillierKeyPair
from repro.datasets.synthetic import generate_synthetic
from repro.datasets.tpch import generate_customer, generate_orders
from repro.exceptions import DatasetError
from repro.fd.tane import TaneResult, tane_with_stats
from repro.relational.table import Relation

DATASET_GENERATORS: dict[str, Callable[..., Relation]] = {
    "orders": generate_orders,
    "customer": generate_customer,
    "synthetic": generate_synthetic,
}


def dataset_by_name(name: str, num_rows: int, seed: int = 0) -> Relation:
    """Generate one of the three evaluation datasets by name."""
    try:
        generator = DATASET_GENERATORS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_GENERATORS)}"
        ) from None
    return generator(num_rows, seed=seed)


def run_f2(
    relation: Relation,
    alpha: float = 0.2,
    split_factor: int = 2,
    seed: int = 0,
    **config_overrides,
) -> EncryptedTable:
    """Encrypt ``relation`` with F2 using a seeded key and configuration."""
    encrypted, _ = run_f2_with_stages(
        relation, alpha=alpha, split_factor=split_factor, seed=seed, **config_overrides
    )
    return encrypted


def run_f2_with_stages(
    relation: Relation,
    alpha: float = 0.2,
    split_factor: int = 2,
    seed: int = 0,
    **config_overrides,
) -> tuple[EncryptedTable, list[StageRecord]]:
    """Encrypt ``relation`` and return per-stage timing records.

    The records come from a :class:`repro.api.pipeline.StageRecorder` hook
    attached to the pipeline — the same instrumentation channel that fills
    :class:`repro.core.stats.EncryptionStats` — so benchmark sweeps and the
    paper's per-step figures always report consistent measurements.
    """
    config = F2Config(alpha=alpha, split_factor=split_factor, seed=seed, **config_overrides)
    recorder = StageRecorder()
    pipeline = EncryptionPipeline(
        key=KeyGen.symmetric_from_seed(seed), config=config, hooks=[recorder]
    )
    encrypted = pipeline.run(relation)
    return encrypted, list(recorder.records)


def time_tane(
    relation: Relation,
    max_lhs_size: int | None = None,
    backend: str | None = None,
) -> TaneResult:
    """Run TANE and return its result (which carries elapsed time)."""
    return tane_with_stats(relation, max_lhs_size=max_lhs_size, backend=backend)


@dataclass
class BaselineTimings:
    """Total cell-encryption time of F2 and the two baselines (Figure 8)."""

    rows: int
    cells: int
    f2_seconds: float
    aes_seconds: float
    paillier_seconds: float
    f2_overhead_rows: int

    def to_dict(self) -> dict[str, object]:
        return {
            "rows": self.rows,
            "cells": self.cells,
            "f2_seconds": round(self.f2_seconds, 6),
            "aes_seconds": round(self.aes_seconds, 6),
            "paillier_seconds": round(self.paillier_seconds, 6),
            "f2_overhead_rows": self.f2_overhead_rows,
        }


def measure_baselines(
    relation: Relation,
    alpha: float = 0.2,
    split_factor: int = 2,
    seed: int = 0,
    paillier_bits: int = 256,
    paillier_cell_limit: int | None = 2000,
    deterministic_backend: str = "prf",
) -> BaselineTimings:
    """Measure F2 vs deterministic AES vs Paillier on one table (Figure 8).

    Parameters
    ----------
    paillier_bits:
        Paillier modulus size.  The default (256) keeps laptop runtimes
        manageable while preserving the orders-of-magnitude gap; the paper
        used a full-strength toolbox and observed the same qualitative gap.
    paillier_cell_limit:
        Paillier encrypts at most this many cells and the measured time is
        extrapolated linearly to the full table (the paper itself could not
        finish Paillier runs beyond 0.65 GB within a day).  ``None`` encrypts
        every cell.
    deterministic_backend:
        Backend of the deterministic baseline.  ``"prf"`` (default) uses the
        HMAC construction, which plays the role of the paper's *native* AES:
        a fast symmetric primitive per cell.  ``"aes"`` uses the from-scratch
        pure-Python AES-128, which is cryptographically faithful but so slow
        in pure Python that it would distort the comparison the figure is
        about (the paper's baseline ran hardware-accelerated ``javax.crypto``).
    """
    cells = relation.num_rows * relation.num_attributes

    start = time.perf_counter()
    encrypted = run_f2(relation, alpha=alpha, split_factor=split_factor, seed=seed)
    f2_seconds = time.perf_counter() - start

    aes_cipher = DeterministicCipher(
        KeyGen.symmetric_from_seed(seed + 1), backend=deterministic_backend
    )
    start = time.perf_counter()
    for row in relation.rows():
        for value in row:
            aes_cipher.encrypt(value)
    aes_seconds = time.perf_counter() - start

    paillier = PaillierCipher(PaillierKeyPair.generate(bits=paillier_bits))
    limit = cells if paillier_cell_limit is None else min(cells, paillier_cell_limit)
    start = time.perf_counter()
    encrypted_cells = 0
    for row in relation.rows():
        for value in row:
            paillier.encrypt_int(hash(value) % paillier.public_key.n)
            encrypted_cells += 1
            if encrypted_cells >= limit:
                break
        if encrypted_cells >= limit:
            break
    measured = time.perf_counter() - start
    paillier_seconds = measured * (cells / max(1, encrypted_cells))

    return BaselineTimings(
        rows=relation.num_rows,
        cells=cells,
        f2_seconds=f2_seconds,
        aes_seconds=aes_seconds,
        paillier_seconds=paillier_seconds,
        f2_overhead_rows=encrypted.stats.rows_added_total,
    )


def approximate_megabytes(relation: Relation) -> float:
    """Approximate serialized size in MB (used to label data-size sweeps)."""
    return relation.approximate_size_bytes() / (1024 * 1024)

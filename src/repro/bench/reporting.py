"""Plain-text, CSV, and machine-readable JSON reporting of benchmark results.

The sweeps return lists of flat dictionaries; these helpers render them as
aligned text tables (what the benchmark scripts print and EXPERIMENTS.md
embeds), persist them as CSV for further analysis, and emit the
``BENCH_<name>.json`` artifacts that track the perf trajectory across PRs
(every ``benchmarks/bench_*.py`` module writes one; CI uploads them).
"""

from __future__ import annotations

import csv
import json
import os
import platform
import time
from pathlib import Path
from typing import Iterable, Mapping

#: Environment variable that redirects where BENCH_<name>.json files land.
BENCH_JSON_DIR_ENV = "F2_BENCH_JSON_DIR"


def format_table(rows: Iterable[Mapping[str, object]], title: str | None = None) -> str:
    """Render result rows as an aligned, pipe-separated text table."""
    rows = [dict(row) for row in rows]
    if not rows:
        return f"{title or 'results'}: (no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(column), *(len(_cell(row.get(column))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def write_csv(rows: Iterable[Mapping[str, object]], path: str | Path) -> Path:
    """Write result rows to a CSV file and return the path."""
    rows = [dict(row) for row in rows]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def write_bench_json(
    name: str,
    rows: Iterable[Mapping[str, object]],
    path: str | Path | None = None,
    **metadata: object,
) -> Path:
    """Persist one benchmark's results as machine-readable ``BENCH_<name>.json``.

    The file carries the measured rows plus enough context to compare runs
    over time: backend availability, interpreter/platform, a wall-clock
    timestamp, and any sweep-specific ``metadata`` the caller passes (dataset
    sizes, alphas, computed speedups, ...).

    Parameters
    ----------
    name:
        Short benchmark identifier; the file is named ``BENCH_<name>.json``.
    rows:
        The sweep's flat result dictionaries.
    path:
        Explicit output path.  Defaults to ``$F2_BENCH_JSON_DIR/BENCH_<name>.json``
        (or the current directory when the variable is unset).
    metadata:
        Extra top-level keys recorded verbatim.
    """
    from repro.backend import available_backends

    rows = [dict(row) for row in rows]
    if path is None:
        directory = Path(os.environ.get(BENCH_JSON_DIR_ENV) or ".")
        path = directory / f"BENCH_{name}.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "benchmark": name,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "backends_available": available_backends(),
        "bench_scale": float(os.environ.get("F2_BENCH_SCALE", "1")),
        **metadata,
        "rows": rows,
    }
    path.write_text(json.dumps(document, indent=2, default=str) + "\n", encoding="utf-8")
    return path

"""Plain-text and CSV reporting of benchmark sweep results.

The sweeps return lists of flat dictionaries; these helpers render them as
aligned text tables (what the benchmark scripts print and EXPERIMENTS.md
embeds) and persist them as CSV for further analysis.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping


def format_table(rows: Iterable[Mapping[str, object]], title: str | None = None) -> str:
    """Render result rows as an aligned, pipe-separated text table."""
    rows = [dict(row) for row in rows]
    if not rows:
        return f"{title or 'results'}: (no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(column), *(len(_cell(row.get(column))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def write_csv(rows: Iterable[Mapping[str, object]], path: str | Path) -> Path:
    """Write result rows to a CSV file and return the path."""
    rows = [dict(row) for row in rows]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path

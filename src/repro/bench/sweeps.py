"""One sweep per table/figure of the paper's evaluation (Section 5).

Every function returns a list of flat dictionaries (one per measured point)
so the results can be printed with :func:`repro.bench.reporting.format_table`,
written to CSV, or asserted on by the pytest benchmarks.  Default sizes are
laptop-scale; every sweep takes explicit row counts so larger runs are a
parameter change away.
"""

from __future__ import annotations

import gc
import time
from fractions import Fraction

from repro.attack.evaluate import (
    evaluate_attack,
    samples_from_deterministic,
    samples_from_encrypted,
)
from repro.attack.frequency import FrequencyAttack
from repro.attack.kerckhoffs import KerckhoffsAttack
from repro.bench.harness import (
    approximate_megabytes,
    dataset_by_name,
    measure_baselines,
    run_f2,
    time_tane,
)
from repro.crypto.deterministic import DeterministicCipher
from repro.crypto.keys import KeyGen
from repro.fd.mas import find_mas_with_stats

DEFAULT_ALPHAS_SYNTHETIC = (1 / 5, 1 / 10, 1 / 15, 1 / 20, 1 / 25)
DEFAULT_ALPHAS_ORDERS = (1 / 5, 1 / 10, 1 / 15, 1 / 20, 1 / 25)
DEFAULT_ALPHAS_OVERHEAD = (1, 1 / 2, 1 / 3, 1 / 4, 1 / 5, 1 / 6, 1 / 8, 1 / 10)
DEFAULT_ALPHAS_DISCOVERY = (1 / 2, 1 / 4, 1 / 6, 1 / 8, 1 / 10)


def _alpha_label(alpha: float) -> str:
    fraction = Fraction(alpha).limit_denominator(64)
    if fraction.numerator == 1:
        return f"1/{fraction.denominator}"
    return f"{alpha:g}"


# ----------------------------------------------------------------------
# Table 1: dataset description
# ----------------------------------------------------------------------
def table1_dataset_description(
    sizes: dict[str, int] | None = None,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Regenerate Table 1: attributes, tuples, size, and MAS structure."""
    sizes = sizes or {"orders": 3000, "customer": 1500, "synthetic": 2000}
    rows = []
    for name, num_rows in sizes.items():
        relation = dataset_by_name(name, num_rows, seed=seed)
        mas_result = find_mas_with_stats(relation)
        mas_sizes = [len(mas) for mas in mas_result.masses]
        rows.append(
            {
                "dataset": name,
                "attributes": relation.num_attributes,
                "tuples": relation.num_rows,
                "size_mb": round(approximate_megabytes(relation), 3),
                "num_mas": len(mas_result.masses),
                "mas_sizes": ",".join(str(size) for size in sorted(mas_sizes)),
                "overlapping_mas_pairs": len(mas_result.overlapping_pairs()),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 6: encryption time per step vs alpha
# ----------------------------------------------------------------------
def fig6_time_vs_alpha(
    dataset: str = "synthetic",
    num_rows: int = 2000,
    alphas: tuple[float, ...] | None = None,
    split_factor: int = 2,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Per-step encryption time (MAX/SSE/SYN/FP) for decreasing alpha."""
    alphas = alphas or (
        DEFAULT_ALPHAS_SYNTHETIC if dataset == "synthetic" else DEFAULT_ALPHAS_ORDERS
    )
    relation = dataset_by_name(dataset, num_rows, seed=seed)
    results = []
    for alpha in alphas:
        encrypted = run_f2(relation, alpha=alpha, split_factor=split_factor, seed=seed)
        point = {
            "dataset": dataset,
            "rows": num_rows,
            "alpha": _alpha_label(alpha),
            "total_seconds": round(encrypted.stats.seconds_total, 4),
        }
        for step, seconds in encrypted.stats.step_seconds().items():
            point[f"{step}_seconds"] = round(seconds, 4)
        results.append(point)
    return results


# ----------------------------------------------------------------------
# Figure 7: encryption time per step vs data size
# ----------------------------------------------------------------------
def fig7_time_vs_size(
    dataset: str = "synthetic",
    sizes: tuple[int, ...] = (500, 1000, 2000, 4000),
    alpha: float | None = None,
    split_factor: int = 2,
    seed: int = 0,
    backend: str | None = None,
) -> list[dict[str, object]]:
    """Per-step encryption time for growing data sizes (fixed alpha)."""
    if alpha is None:
        alpha = 0.25 if dataset == "synthetic" else 0.2
    results = []
    for num_rows in sizes:
        relation = dataset_by_name(dataset, num_rows, seed=seed)
        encrypted = run_f2(
            relation, alpha=alpha, split_factor=split_factor, seed=seed, backend=backend
        )
        point = {
            "dataset": dataset,
            "rows": num_rows,
            "size_mb": round(approximate_megabytes(relation), 3),
            "alpha": _alpha_label(alpha),
            "total_seconds": round(encrypted.stats.seconds_total, 4),
        }
        for step, seconds in encrypted.stats.step_seconds().items():
            point[f"{step}_seconds"] = round(seconds, 4)
        results.append(point)
    return results


# ----------------------------------------------------------------------
# Figure 7 follow-up: compute-backend scalability (coded-columnar engine)
# ----------------------------------------------------------------------
def fig7_backend_scalability(
    dataset: str = "orders",
    sizes: tuple[int, ...] = (1200, 2400, 4800, 9600),
    alpha: float | None = None,
    split_factor: int = 2,
    seed: int = 0,
    max_lhs_size: int | None = 4,
    backends: tuple[str, ...] | None = None,
) -> list[dict[str, object]]:
    """TANE + encryption wall time per compute backend for growing sizes.

    For every size and every available backend the full owner+provider hot
    path is measured: F2 encryption of the table plus TANE discovery on the
    resulting ciphertext.  When both backends are present each row carries
    ``numpy_speedup`` — the pure-Python wall time divided by the NumPy wall
    time — which is the headline number of the coded-columnar engine.

    GC is paused around each measured region so allocation-heavy runs are
    compared on equal footing.
    """
    from repro.backend import numpy_available

    if alpha is None:
        alpha = 0.25 if dataset == "synthetic" else 0.2
    if backends is None:
        backends = ("python", "numpy") if numpy_available() else ("python",)
    results = []
    for num_rows in sizes:
        row: dict[str, object] = {
            "dataset": dataset,
            "rows": num_rows,
            "alpha": _alpha_label(alpha),
        }
        totals: dict[str, float] = {}
        for backend in backends:
            relation = dataset_by_name(dataset, num_rows, seed=seed)
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                encrypted = run_f2(
                    relation,
                    alpha=alpha,
                    split_factor=split_factor,
                    seed=seed,
                    backend=backend,
                )
                encrypt_seconds = time.perf_counter() - start
                start = time.perf_counter()
                time_tane(
                    encrypted.server_view(), max_lhs_size=max_lhs_size, backend=backend
                )
                tane_seconds = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
            totals[backend] = encrypt_seconds + tane_seconds
            row[f"{backend}_encrypt_seconds"] = round(encrypt_seconds, 4)
            row[f"{backend}_tane_seconds"] = round(tane_seconds, 4)
            row[f"{backend}_total_seconds"] = round(totals[backend], 4)
        if "python" in totals and "numpy" in totals and totals["numpy"] > 0:
            row["numpy_speedup"] = round(totals["python"] / totals["numpy"], 2)
        results.append(row)
    return results


# ----------------------------------------------------------------------
# Figure 8: F2 vs AES vs Paillier
# ----------------------------------------------------------------------
def fig8_baseline_comparison(
    dataset: str = "synthetic",
    sizes: tuple[int, ...] = (500, 1000, 2000),
    alpha: float | None = None,
    seed: int = 0,
    paillier_bits: int = 256,
) -> list[dict[str, object]]:
    """Total encryption time of F2, deterministic AES, and Paillier."""
    if alpha is None:
        alpha = 0.25 if dataset == "synthetic" else 0.2
    results = []
    for num_rows in sizes:
        relation = dataset_by_name(dataset, num_rows, seed=seed)
        timings = measure_baselines(
            relation, alpha=alpha, seed=seed, paillier_bits=paillier_bits
        )
        point = {"dataset": dataset, "alpha": _alpha_label(alpha)}
        point.update(timings.to_dict())
        results.append(point)
    return results


# ----------------------------------------------------------------------
# Figure 9: artificial-record overhead
# ----------------------------------------------------------------------
def fig9_overhead(
    dataset: str = "customer",
    num_rows: int = 1500,
    alphas: tuple[float, ...] | None = None,
    sizes: tuple[int, ...] | None = None,
    alpha_for_sizes: float = 0.2,
    split_factor: int = 2,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Artificial-record overhead per step, vs alpha and (optionally) vs size.

    Returns one row per (sweep variable value); the sweep over alpha is run
    when ``alphas`` is not an empty tuple (``None`` selects the default alpha
    list), the sweep over sizes when ``sizes`` is given.
    """
    alphas = DEFAULT_ALPHAS_OVERHEAD if alphas is None else alphas
    results = []
    relation = dataset_by_name(dataset, num_rows, seed=seed)
    for alpha in alphas:
        encrypted = run_f2(relation, alpha=alpha, split_factor=split_factor, seed=seed)
        point = {
            "dataset": dataset,
            "sweep": "alpha",
            "rows": num_rows,
            "alpha": _alpha_label(alpha),
            "total_overhead": round(encrypted.stats.total_overhead_ratio, 4),
        }
        for step, ratio in encrypted.stats.overhead_ratios().items():
            point[f"{step}_overhead"] = round(ratio, 4)
        results.append(point)
    for num_rows_point in sizes or ():
        relation = dataset_by_name(dataset, num_rows_point, seed=seed)
        encrypted = run_f2(relation, alpha=alpha_for_sizes, split_factor=split_factor, seed=seed)
        point = {
            "dataset": dataset,
            "sweep": "size",
            "rows": num_rows_point,
            "alpha": _alpha_label(alpha_for_sizes),
            "total_overhead": round(encrypted.stats.total_overhead_ratio, 4),
        }
        for step, ratio in encrypted.stats.overhead_ratios().items():
            point[f"{step}_overhead"] = round(ratio, 4)
        results.append(point)
    return results


# ----------------------------------------------------------------------
# Figure 10: FD-discovery time overhead on encrypted data
# ----------------------------------------------------------------------
def fig10_discovery_overhead(
    dataset: str = "orders",
    num_rows: int = 1500,
    alphas: tuple[float, ...] | None = None,
    split_factor: int = 2,
    seed: int = 0,
    max_lhs_size: int | None = 4,
) -> list[dict[str, object]]:
    """Relative FD-discovery slowdown on the ciphertext, ``(T' - T) / T``."""
    alphas = alphas or DEFAULT_ALPHAS_DISCOVERY
    relation = dataset_by_name(dataset, num_rows, seed=seed)
    baseline = time_tane(relation, max_lhs_size=max_lhs_size)
    results = []
    for alpha in alphas:
        encrypted = run_f2(relation, alpha=alpha, split_factor=split_factor, seed=seed)
        on_cipher = time_tane(encrypted.server_view(), max_lhs_size=max_lhs_size)
        overhead = (
            (on_cipher.elapsed_seconds - baseline.elapsed_seconds) / baseline.elapsed_seconds
            if baseline.elapsed_seconds > 0
            else 0.0
        )
        results.append(
            {
                "dataset": dataset,
                "rows": num_rows,
                "alpha": _alpha_label(alpha),
                "plaintext_discovery_seconds": round(baseline.elapsed_seconds, 4),
                "ciphertext_discovery_seconds": round(on_cipher.elapsed_seconds, 4),
                "time_overhead": round(overhead, 4),
                "ciphertext_rows": encrypted.num_rows,
                "fds_plaintext": len(baseline.fds),
                "fds_ciphertext": len(on_cipher.fds),
            }
        )
    return results


# ----------------------------------------------------------------------
# Section 5.4 (text): local FD discovery vs encrypting for outsourcing
# ----------------------------------------------------------------------
def sec54_local_vs_outsourcing(
    dataset: str = "customer",
    sizes: tuple[int, ...] = (400, 800, 1600),
    alpha: float = 0.25,
    seed: int = 0,
    max_lhs_size: int | None = None,
) -> list[dict[str, object]]:
    """Compare the owner's cost of local TANE vs. encrypting with F2.

    The default uses the 21-attribute Customer table, where the FD-discovery
    lattice is widest and local discovery is the most expensive relative to
    encryption (the regime the paper's Section 5.4 numbers come from).
    """
    results = []
    for num_rows in sizes:
        relation = dataset_by_name(dataset, num_rows, seed=seed)
        discovery = time_tane(relation, max_lhs_size=max_lhs_size)
        encrypted = run_f2(relation, alpha=alpha, seed=seed)
        results.append(
            {
                "dataset": dataset,
                "rows": num_rows,
                "local_fd_discovery_seconds": round(discovery.elapsed_seconds, 4),
                "f2_encryption_seconds": round(encrypted.stats.seconds_total, 4),
                "speedup": round(
                    discovery.elapsed_seconds / max(encrypted.stats.seconds_total, 1e-9), 2
                ),
                "fds_found": len(discovery.fds),
            }
        )
    return results


# ----------------------------------------------------------------------
# Security claims of Section 4: empirical attack success
# ----------------------------------------------------------------------
def security_attack_evaluation(
    dataset: str = "orders",
    num_rows: int = 800,
    alphas: tuple[float, ...] = (1 / 2, 1 / 4, 1 / 8),
    trials: int = 400,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Empirical success of the frequency and Kerckhoffs attacks vs alpha.

    Also measures both attacks against the deterministic baseline to show the
    leakage F2 removes.
    """
    relation = dataset_by_name(dataset, num_rows, seed=seed)
    domain_sizes = relation.domain_sizes()
    # Attack skewed, moderate-cardinality attributes: these are the ones where
    # frequency analysis is informative (unique columns have flat frequencies,
    # 2-3-value columns cannot be guessed worse than 1/domain by anyone).
    target_attributes = [
        attribute
        for attribute, domain in domain_sizes.items()
        if 3 <= domain <= max(40, num_rows // 10)
    ] or list(relation.attributes[:2])
    random_guess_rate = sum(1.0 / domain_sizes[attr] for attr in target_attributes) / len(
        target_attributes
    )
    results = []

    deterministic = DeterministicCipher(KeyGen.symmetric_from_seed(seed))
    det_relation, det_samples = samples_from_deterministic(
        relation, deterministic, attributes=target_attributes
    )
    for attack in (FrequencyAttack(), KerckhoffsAttack()):
        outcome = evaluate_attack(
            attack, det_samples, relation, det_relation, trials=trials, seed=seed
        )
        results.append(
            {
                "dataset": dataset,
                "scheme": "deterministic",
                "alpha": "-",
                "attack": attack.name,
                "success_rate": round(outcome.success_rate, 4),
                "random_guess_rate": round(random_guess_rate, 4),
            }
        )

    for alpha in alphas:
        encrypted = run_f2(relation, alpha=alpha, seed=seed)
        samples = samples_from_encrypted(encrypted, relation, attributes=target_attributes)
        for attack in (FrequencyAttack(), KerckhoffsAttack()):
            outcome = evaluate_attack(
                attack, samples, relation, encrypted.relation, trials=trials, seed=seed
            )
            results.append(
                {
                    "dataset": dataset,
                    "scheme": "f2",
                    "alpha": _alpha_label(alpha),
                    "attack": attack.name,
                    "success_rate": round(outcome.success_rate, 4),
                    "random_guess_rate": round(random_guess_rate, 4),
                    "bound": round(max(alpha, random_guess_rate), 4),
                }
            )
    return results

"""Benchmark harness regenerating the paper's evaluation (Section 5).

The harness is organised as one sweep function per table/figure of the paper
(:mod:`~repro.bench.sweeps`), a small set of timing/measurement helpers
(:mod:`~repro.bench.harness`), and plain-text/CSV reporting
(:mod:`~repro.bench.reporting`).  The ``benchmarks/`` directory at the
repository root contains one pytest-benchmark module per experiment that
calls into these sweeps; the same sweeps are also reachable through the CLI
(``f2-repro bench ...``) for ad-hoc runs at larger scales.
"""

from repro.bench.harness import (
    BaselineTimings,
    dataset_by_name,
    measure_baselines,
    run_f2,
    run_f2_with_stages,
    time_tane,
)
from repro.bench.reporting import format_table, write_bench_json, write_csv
from repro.bench.sweeps import (
    fig6_time_vs_alpha,
    fig7_backend_scalability,
    fig7_time_vs_size,
    fig8_baseline_comparison,
    fig9_overhead,
    fig10_discovery_overhead,
    sec54_local_vs_outsourcing,
    security_attack_evaluation,
    table1_dataset_description,
)

__all__ = [
    "BaselineTimings",
    "dataset_by_name",
    "fig10_discovery_overhead",
    "fig6_time_vs_alpha",
    "fig7_backend_scalability",
    "fig7_time_vs_size",
    "fig8_baseline_comparison",
    "fig9_overhead",
    "format_table",
    "measure_baselines",
    "run_f2",
    "run_f2_with_stages",
    "sec54_local_vs_outsourcing",
    "security_attack_evaluation",
    "table1_dataset_description",
    "time_tane",
    "write_bench_json",
    "write_csv",
]

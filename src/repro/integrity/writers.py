"""Optimistic multi-writer coordination for one outsourced table.

Several threads inserting into one table share a :class:`WriteCoordinator`.
The F2 owner state is inherently serial (each insert re-plans against the
state the previous one produced), so encryption runs one writer at a time
under :attr:`WriteCoordinator.owner_lock`; what the coordinator makes
*concurrent* is the send side: every writer ships an optimistic
``InsertDelta`` against the last server-acknowledged ``(view, commit
version)`` base, and the server's per-table version CAS arbitrates.

The key invariant is that owner views are cumulative: the writer holding
owner sequence *k* encrypted a view containing the rows of writers
``1..k``.  So when a writer loses the CAS race:

* if the acknowledged sequence has reached or passed its own, its rows
  already landed inside a later writer's view — the push is a no-op;
* otherwise it *rebases*: recomputes the delta from the new acknowledged
  base (the winner's view, a subset of its own) and retries.

Either way no writer ever falls back to a full-view rewrite — the property
the multi-writer stress test pins (``stats.full_fallbacks == 0``).

When an :class:`~repro.integrity.state.TableIntegrityState` is attached,
acknowledged pushes advance it in server-commit order (under the
coordinator lock), so verification keeps working at full write concurrency.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.api.delta import ViewDelta
    from repro.integrity.state import TableIntegrityState
    from repro.relational.table import Relation


@dataclass
class WriteStats:
    """Counters the stress test (and the bench) read."""

    delta_pushes: int = 0
    noop_pushes: int = 0
    cas_conflicts: int = 0
    full_fallbacks: int = 0
    rebases: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "delta_pushes": self.delta_pushes,
            "noop_pushes": self.noop_pushes,
            "cas_conflicts": self.cas_conflicts,
            "full_fallbacks": self.full_fallbacks,
            "rebases": self.rebases,
        }


@dataclass
class _Base:
    """The last server-acknowledged state (guarded by the coordinator lock)."""

    view: "Relation | None" = None
    version: int = -1
    acked_seq: int = 0
    generation: int = 0  # bumps on every ack, for cheap change detection


class WriteCoordinator:
    """Shared state of all concurrent writers of one table."""

    #: How long a conflicted writer waits for the winner's ack to land
    #: before re-reading the base anyway (seconds).  Purely an anti-spin
    #: measure — correctness never depends on the timeout.
    CONFLICT_WAIT = 2.0

    def __init__(self, table_id: str = "", integrity: "TableIntegrityState | None" = None):
        self.table_id = table_id
        self.integrity = integrity
        self.stats = WriteStats()
        #: Serialises owner-side encryption (the F2 pipeline is stateful).
        self.owner_lock = threading.Lock()
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._base = _Base()
        self._next_seq = 1

    # -- owner-side sequencing -----------------------------------------
    def next_sequence(self) -> int:
        """Claim the next owner sequence (call while holding ``owner_lock``)."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    # -- acknowledged base ---------------------------------------------
    def record_push(self, view: "Relation", version: int, server_root: str = "") -> None:
        """Adopt a full push (outsource / full insert) the server ack'd."""
        with self._lock:
            self._base.view = view
            self._base.version = int(version)
            self._base.acked_seq = self._next_seq - 1
            self._base.generation += 1
            self._changed.notify_all()
        if self.integrity is not None:
            self.integrity.record_push(view, version, server_root)

    def record_delta_ack(
        self,
        seq: int,
        view: "Relation",
        delta: "ViewDelta",
        version: int,
        server_root: str = "",
    ) -> None:
        """One writer's delta landed: advance the shared base to its view."""
        with self._lock:
            self._base.view = view
            self._base.version = int(version)
            self._base.acked_seq = max(self._base.acked_seq, seq)
            self._base.generation += 1
            self._changed.notify_all()
            # Integrity updates happen inside the lock: acks arrive in
            # server-commit order per the CAS, and the expected tree must
            # replay them in exactly that order.
            if self.integrity is not None:
                self.integrity.record_delta(delta, version, server_root)

    def snapshot_base(self) -> tuple["Relation | None", int, int, int]:
        """``(view, version, acked_seq, generation)`` atomically."""
        with self._lock:
            base = self._base
            return base.view, base.version, base.acked_seq, base.generation

    def wait_past(self, generation: int) -> None:
        """Block (bounded) until the base moved past ``generation``.

        A conflicted writer calls this so its retry reads the winner's ack
        instead of spinning on the same stale base.  Returns after
        :attr:`CONFLICT_WAIT` even unchanged — the retry loop re-reads and
        copes either way.
        """
        with self._lock:
            if self._base.generation != generation:
                return
            self._changed.wait(timeout=self.CONFLICT_WAIT)

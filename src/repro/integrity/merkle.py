"""Merkle trees over ciphertext rows.

The leaf of row *i* is a SHA-256 over the row's cells in the same canonical
byte form as :func:`repro.api.delta.relation_digest` (``str(cell)`` UTF-8
with ``0x1f`` cell separators and an ``0x1e`` terminator), so the owner —
who holds the server view she shipped — and an honest server always compute
the same root from the same relation, regardless of engine or backend.

Hash inputs are domain-separated (``0x00`` leaf prefix, ``0x01`` node
prefix) so an inner node can never be presented as a leaf or vice versa.
An odd trailing node is *promoted* to the next level unchanged (not paired
with a copy of itself), which keeps every root unambiguous about its leaf
count and makes appends strictly right-edge work: :meth:`MerkleTree.append`
touches O(log n) nodes, matching the O(delta) cost profile of the segment
store's ``InsertDelta`` path.

Inclusion proofs (:meth:`MerkleTree.proof` / :func:`verify_proof`) carry
only the sibling digests; orientation and promotions are re-derived at
verification time from the leaf index and the tree's leaf count, so a proof
is ``32 * ceil(log2(n))`` bytes at most.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.exceptions import IntegrityError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.api.delta import ViewDelta
    from repro.relational.table import Relation

#: Root of the zero-leaf tree (a fixed domain-separated constant, so an
#: empty table still has a well-defined, non-forgeable root).
EMPTY_ROOT = hashlib.sha256(b"\x02f2-merkle-empty/1").hexdigest()

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def hash_row(cells: Iterable[object]) -> bytes:
    """The leaf digest of one row (over its canonical cell bytes)."""
    digest = hashlib.sha256(_LEAF_PREFIX)
    for cell in cells:
        digest.update(str(cell).encode("utf-8"))
        digest.update(b"\x1f")
    digest.update(b"\x1e")
    return digest.digest()


def relation_leaves(relation: "Relation") -> list[bytes]:
    """Leaf digests of every row of a relation, in row order."""
    return [hash_row(row) for row in relation.rows()]


def _hash_pair(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


class MerkleTree:
    """A Merkle tree kept as per-level digest arrays for O(log n) appends."""

    __slots__ = ("_levels",)

    def __init__(self, leaves: Sequence[bytes] = ()):
        self._levels: list[list[bytes]] = [list(leaves)]
        level = 0
        while len(self._levels[level]) > 1:
            child = self._levels[level]
            parent = [
                _hash_pair(child[i], child[i + 1]) if i + 1 < len(child) else child[i]
                for i in range(0, len(child), 2)
            ]
            self._levels.append(parent)
            level += 1

    def copy(self) -> "MerkleTree":
        """An independent tree sharing the (immutable) digest bytes.

        O(n) list copies but zero hashing — used to compute a candidate
        post-delta tree without touching the committed one until the write
        actually lands.
        """
        clone = MerkleTree.__new__(MerkleTree)
        clone._levels = [list(level) for level in self._levels]
        return clone

    @property
    def num_leaves(self) -> int:
        return len(self._levels[0])

    @property
    def leaves(self) -> list[bytes]:
        """The leaf digests (a copy; mutating it does not touch the tree)."""
        return list(self._levels[0])

    @property
    def root(self) -> str:
        """The root digest as hex (``EMPTY_ROOT`` for a leafless tree)."""
        top = self._levels[-1]
        return top[0].hex() if top else EMPTY_ROOT

    def append(self, leaf: bytes) -> None:
        """Add one leaf, recomputing only the right-edge path (O(log n))."""
        self.extend([leaf])

    def extend(self, new_leaves: Iterable[bytes]) -> None:
        """Append several leaves, recomputing each affected tail once."""
        added = list(new_leaves)
        if not added:
            return
        changed = len(self._levels[0])  # first index whose ancestors change
        self._levels[0].extend(added)
        level = 0
        while len(self._levels[level]) > 1:
            child = self._levels[level]
            if level + 1 >= len(self._levels):
                self._levels.append([])
            parent = self._levels[level + 1]
            start = changed // 2
            del parent[start:]
            for i in range(start * 2, len(child), 2):
                parent.append(
                    _hash_pair(child[i], child[i + 1]) if i + 1 < len(child) else child[i]
                )
            changed = start
            level += 1
        del self._levels[level + 1 :]

    def proof(self, index: int) -> list[bytes]:
        """Sibling digests from leaf ``index`` up to (excluding) the root.

        Levels where the node is promoted (an odd tail with no sibling)
        contribute nothing; :func:`verify_proof` re-derives which levels
        those are from ``(index, num_leaves)``.
        """
        if not 0 <= index < self.num_leaves:
            raise IntegrityError(
                f"proof index {index} outside the tree's {self.num_leaves} leaves"
            )
        path: list[bytes] = []
        j = index
        for level in self._levels[:-1]:
            sibling = j ^ 1
            if sibling < len(level):
                path.append(level[sibling])
            j //= 2
        return path


def verify_proof(
    leaf: bytes, index: int, num_leaves: int, path: Sequence[bytes], root: str
) -> bool:
    """Check an inclusion proof against a root, given the tree's leaf count.

    Walks the same level widths the prover had, so promotions consume no
    path element; returns ``False`` on any mismatch, including a path of
    the wrong length for ``(index, num_leaves)``.
    """
    if num_leaves <= 0 or not 0 <= index < num_leaves:
        return False
    node = leaf
    j = index
    width = num_leaves
    cursor = 0
    while width > 1:
        sibling = j ^ 1
        if sibling < width:
            if cursor >= len(path):
                return False
            other = path[cursor]
            cursor += 1
            node = _hash_pair(node, other) if j % 2 == 0 else _hash_pair(other, node)
        j //= 2
        width = (width + 1) // 2
    return cursor == len(path) and node.hex() == root


def leaves_after_delta(base_leaves: Sequence[bytes], delta: "ViewDelta") -> list[bytes]:
    """The leaf list a delta produces, hashing only its literal rows.

    Copy segments reference slices of ``base_leaves`` verbatim; only the
    shipped literal rows are hashed — O(changed rows), never O(table).
    Raises :class:`IntegrityError` if the delta's structure does not fit the
    base (the protocol layer validates structure first, so hitting this
    means the delta was applied against the wrong cached tree).
    """
    from repro.api.delta import OP_COPY, OP_LITERAL

    literal_hashes: list[bytes] = (
        [] if delta.literals is None else relation_leaves(delta.literals)
    )
    result: list[bytes] = []
    cursor = 0
    for segment in delta.segments:
        op = segment[0]
        if op == OP_COPY:
            start, count = int(segment[1]), int(segment[2])
            if start < 0 or count < 0 or start + count > len(base_leaves):
                raise IntegrityError(
                    f"delta copy segment {start}+{count} outside the cached "
                    f"{len(base_leaves)} leaves"
                )
            result.extend(base_leaves[start : start + count])
        elif op == OP_LITERAL:
            count = int(segment[1])
            if count < 0 or cursor + count > len(literal_hashes):
                raise IntegrityError("delta literal segment overruns its rows")
            result.extend(literal_hashes[cursor : cursor + count])
            cursor += count
        else:
            raise IntegrityError(f"unknown delta opcode {op!r}")
    return result

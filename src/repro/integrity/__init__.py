"""repro.integrity: verifying the untrusted service provider.

The paper's threat model makes the provider untrusted, yet until this
package the repo only authenticated the *request* path (PR 5's signed
envelopes).  A tampering or rolled-back server could silently return stale
or modified ciphertext.  This package closes that gap:

* :mod:`repro.integrity.merkle` — an incrementally-maintained Merkle tree
  over ciphertext rows (leaf = hash of the row's wire-canonical cell bytes,
  the same canonical form as :func:`repro.api.delta.relation_digest`), with
  O(log n) appends and compact inclusion proofs.
* :mod:`repro.integrity.state` — the owner's per-table verification state:
  her own copy of the leaf hashes plus a monotonic ``(version, root)``
  freshness chain, raising :class:`repro.exceptions.IntegrityError` on any
  mismatch or rollback.
* :mod:`repro.integrity.writers` — a :class:`WriteCoordinator` for several
  concurrent writers of one table, retrying optimistic deltas on
  ``VERSION_CONFLICT`` with a rebase instead of a full-view rewrite.
* :mod:`repro.integrity.verify` — offline verification of a storage
  directory (full-CRC store checks plus Merkle-root recomputation), behind
  ``f2-repro verify`` and ``serve --verify-on-start``.

Reply authenticity (HMAC-signed replies keyed by a key *derived* from the
tenant secret) lives in :mod:`repro.api.auth`; the protocol plumbing in
:mod:`repro.api.protocol`.
"""

from repro.integrity.merkle import (
    EMPTY_ROOT,
    MerkleTree,
    hash_row,
    leaves_after_delta,
    relation_leaves,
    verify_proof,
)
from repro.integrity.state import TableIntegrityState
from repro.integrity.verify import verify_storage_dir
from repro.integrity.writers import WriteCoordinator

__all__ = [
    "EMPTY_ROOT",
    "MerkleTree",
    "TableIntegrityState",
    "WriteCoordinator",
    "hash_row",
    "leaves_after_delta",
    "relation_leaves",
    "verify_proof",
    "verify_storage_dir",
]

"""The owner's per-table verification state.

A :class:`TableIntegrityState` is the client-side mirror of the server's
Merkle tree: the owner updates it from the views and deltas *she* sends
(so it reflects what the table should hold), then checks every reply
against it —

* **root agreement** — the root the server advertises must equal the root
  of the owner's own tree;
* **freshness** — the ``(commit version, root)`` pair must advance
  monotonically: a lower version than any previously seen, or a different
  root at the same version, means the provider rolled back or forked the
  table;
* **inclusion** — each matched row's proof must lead from the owner's own
  leaf hash to the agreed root, placing the row at the claimed index.

Every violation raises :class:`repro.exceptions.IntegrityError` with the
table id attached.  The state is thread-safe and shareable: concurrent
writers coordinated by :class:`repro.integrity.writers.WriteCoordinator`
feed one shared instance.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.exceptions import IntegrityError
from repro.integrity.merkle import MerkleTree, relation_leaves, verify_proof
from repro.obs import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.api.delta import ViewDelta
    from repro.relational.table import Relation

# Client-side verification cost (no-ops under REPRO_METRICS=0).
_VERIFY_SECONDS = _metrics.histogram("integrity.verify_seconds")
_PROOFS_VERIFIED = _metrics.counter("integrity.proofs_verified")
_PROOF_BYTES_VERIFIED = _metrics.counter("integrity.proof_bytes_verified")


class TableIntegrityState:
    """Owner-side expected tree + freshness chain of one outsourced table."""

    def __init__(self, table_id: str = ""):
        self.table_id = table_id
        self._lock = threading.Lock()
        self._tree: "MerkleTree | None" = None
        self._last_version: "int | None" = None
        self._last_root = ""

    # -- owner-driven updates ------------------------------------------
    @property
    def expected_root(self) -> str:
        """Root of the view the owner last pushed (``""`` before any push)."""
        with self._lock:
            return self._tree.root if self._tree is not None else ""

    @property
    def last_version(self) -> "int | None":
        with self._lock:
            return self._last_version

    def record_push(self, view: "Relation", version: int, server_root: str = "") -> str:
        """Adopt a full view the server acknowledged; returns the new root.

        ``server_root`` (when the reply carried one) is checked against the
        owner's own tree immediately — a server that mangled the upload is
        caught at write time, not at the first query.
        """
        tree = MerkleTree(relation_leaves(view))
        with self._lock:
            self._tree = tree
            self._check_freshness_locked(version, tree.root)
        if server_root and server_root != tree.root:
            raise IntegrityError(
                f"table {self.table_id!r}: server acknowledged root "
                f"{server_root[:16]}... but the pushed view hashes to "
                f"{tree.root[:16]}...",
                table_id=self.table_id,
            )
        return tree.root

    def record_delta(self, delta: "ViewDelta", version: int, server_root: str = "") -> str:
        """Advance the expected tree past an acknowledged delta."""
        from repro.integrity.merkle import leaves_after_delta

        with self._lock:
            if self._tree is None:
                raise IntegrityError(
                    f"table {self.table_id!r}: delta recorded before any push",
                    table_id=self.table_id,
                )
            self._tree = MerkleTree(leaves_after_delta(self._tree.leaves, delta))
            root = self._tree.root
            self._check_freshness_locked(version, root)
        if server_root and server_root != root:
            raise IntegrityError(
                f"table {self.table_id!r}: server acknowledged root "
                f"{server_root[:16]}... after a delta the owner hashes to "
                f"{root[:16]}...",
                table_id=self.table_id,
            )
        return root

    # -- reply checks ---------------------------------------------------
    def check_reply(self, version: int, root: str, num_rows: "int | None" = None) -> None:
        """Verify a query reply's ``(version, root, row count)`` claims."""
        with self._lock:
            expected = self._tree
            if expected is not None:
                if root != expected.root:
                    raise IntegrityError(
                        f"table {self.table_id!r}: server root {root[:16]}... "
                        f"differs from the owner's expected root "
                        f"{expected.root[:16]}... (tampered or stale data)",
                        table_id=self.table_id,
                    )
                if num_rows is not None and num_rows != expected.num_leaves:
                    raise IntegrityError(
                        f"table {self.table_id!r}: server reports {num_rows} "
                        f"rows, owner expects {expected.num_leaves}",
                        table_id=self.table_id,
                    )
            self._check_freshness_locked(version, root)

    def verify_proofs(
        self,
        row_indexes: Sequence[int],
        proofs: Sequence[Sequence[bytes]],
        num_leaves: int,
        root: str,
    ) -> None:
        """Check one inclusion proof per matched row against ``root``.

        The leaf hashes come from the owner's own tree — the server proves
        *placement*, it never gets to supply the row bytes being proven.
        """
        with obs.span(
            "integrity.verify_proofs",
            table=self.table_id,
            proofs=len(proofs),
        ) as span_obj:
            started = time.perf_counter()
            self._verify_proofs(row_indexes, proofs, num_leaves, root)
            if span_obj is not None:
                _VERIFY_SECONDS.observe(time.perf_counter() - started)
                _PROOFS_VERIFIED.inc(len(proofs))
                _PROOF_BYTES_VERIFIED.inc(
                    sum(len(node) for path in proofs for node in path)
                )

    def _verify_proofs(
        self,
        row_indexes: Sequence[int],
        proofs: Sequence[Sequence[bytes]],
        num_leaves: int,
        root: str,
    ) -> None:
        with self._lock:
            tree = self._tree
        if tree is None:
            raise IntegrityError(
                f"table {self.table_id!r}: no owner-side tree to verify "
                "proofs against",
                table_id=self.table_id,
            )
        if len(proofs) != len(row_indexes):
            raise IntegrityError(
                f"table {self.table_id!r}: {len(proofs)} proofs for "
                f"{len(row_indexes)} matched rows",
                table_id=self.table_id,
            )
        if num_leaves != tree.num_leaves:
            raise IntegrityError(
                f"table {self.table_id!r}: proofs claim a {num_leaves}-row "
                f"tree, owner expects {tree.num_leaves}",
                table_id=self.table_id,
            )
        leaves = tree.leaves
        for index, path in zip(row_indexes, proofs):
            if not 0 <= index < len(leaves):
                raise IntegrityError(
                    f"table {self.table_id!r}: matched row {index} outside "
                    f"the {len(leaves)}-row table",
                    table_id=self.table_id,
                )
            if not verify_proof(leaves[index], index, num_leaves, path, root):
                raise IntegrityError(
                    f"table {self.table_id!r}: inclusion proof for row "
                    f"{index} does not verify against the root",
                    table_id=self.table_id,
                )

    # -- internals ------------------------------------------------------
    def _check_freshness_locked(self, version: int, root: str) -> None:
        version = int(version)
        if self._last_version is not None:
            if version < self._last_version:
                raise IntegrityError(
                    f"table {self.table_id!r}: server version regressed "
                    f"{self._last_version} -> {version} (rollback to an "
                    "older generation)",
                    table_id=self.table_id,
                )
            if version == self._last_version and root != self._last_root:
                raise IntegrityError(
                    f"table {self.table_id!r}: two different roots at "
                    f"version {version} (forked table state)",
                    table_id=self.table_id,
                )
        self._last_version = version
        self._last_root = root

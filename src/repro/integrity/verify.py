"""Offline integrity verification of a server storage directory.

``f2-repro verify --storage DIR`` (and ``serve --verify-on-start``) walk
the directory the way the server's startup loader does — top-level entries
are the anonymous local tenant, subdirectories are tenant namespaces — and
check every table found:

* **segment stores** (``<table>.f2s`` directories): the engine's full-CRC
  :meth:`~repro.store.segment.SegmentTableStore.verify` pass, then the
  Merkle root recomputed from the stored rows against the root recorded in
  the committed manifest;
* **snapshots** (``<table>.f2t`` files): the frame decoded in full (any
  truncation or framing damage surfaces), then the recomputed root against
  the ``<table>.f2i`` integrity sidecar the server writes beside each
  snapshot.

A table whose store predates root recording is reported with
``recorded_root == ""`` and still passes (there is nothing to contradict);
any mismatch or unreadable store fails its report.  The CLI turns any
failed report into ``ErrorCode.INTEGRITY_VIOLATION`` / exit code 7.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.backend import ComputeBackend, get_backend
from repro.exceptions import ReproError, StoreError
from repro.integrity.merkle import MerkleTree, relation_leaves

#: Format tag of the ``.f2i`` snapshot-integrity sidecar.
SIDECAR_FORMAT = "f2-integrity/1"
SIDECAR_SUFFIX = ".f2i"
_SNAPSHOT_SUFFIX = ".f2t"


@dataclass
class TableReport:
    """Outcome of verifying one table."""

    tenant: str  # "" for the anonymous local namespace
    table: str
    engine: str  # "segment" | "snapshot"
    ok: bool
    rows: int = 0
    recorded_root: str = ""
    computed_root: str = ""
    error: str = ""

    @property
    def label(self) -> str:
        return f"{self.tenant}/{self.table}" if self.tenant else self.table


def read_sidecar(path: Path) -> "dict | None":
    """The parsed ``.f2i`` sidecar next to a snapshot, or ``None``."""
    sidecar = path.with_suffix(SIDECAR_SUFFIX)
    if not sidecar.exists():
        return None
    try:
        doc = json.loads(sidecar.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(doc, dict) or doc.get("format") != SIDECAR_FORMAT:
        return {}
    return doc


def _verify_segment_dir(directory: Path, tenant: str, backend: ComputeBackend) -> TableReport:
    from repro.store.segment import SegmentTableStore

    table = directory.name[: -len(".f2s")]
    report = TableReport(tenant=tenant, table=table, engine="segment", ok=False)
    store = None
    try:
        store = SegmentTableStore(directory, backend)
        store.verify()
        report.rows = store.num_rows
        report.recorded_root = store.recorded_merkle_root()
        report.computed_root = MerkleTree(relation_leaves(store.relation())).root
    except ReproError as exc:
        report.error = str(exc)
        return report
    finally:
        if store is not None:
            store.close()
    if report.recorded_root and report.recorded_root != report.computed_root:
        report.error = (
            f"manifest records merkle root {report.recorded_root[:16]}... but "
            f"the stored rows hash to {report.computed_root[:16]}..."
        )
        return report
    report.ok = True
    return report


def _verify_snapshot(path: Path, tenant: str) -> TableReport:
    from repro.wire import decode_relation

    table = path.name[: -len(_SNAPSHOT_SUFFIX)]
    report = TableReport(tenant=tenant, table=table, engine="snapshot", ok=False)
    try:
        relation = decode_relation(path.read_bytes())
    except (OSError, ReproError) as exc:
        report.error = f"snapshot does not decode: {exc}"
        return report
    report.rows = relation.num_rows
    report.computed_root = MerkleTree(relation_leaves(relation)).root
    sidecar = read_sidecar(path)
    if sidecar is not None:
        report.recorded_root = str(sidecar.get("merkle_root", ""))
        if not sidecar:
            report.error = "integrity sidecar is unreadable or malformed"
            return report
        if report.recorded_root and report.recorded_root != report.computed_root:
            report.error = (
                f"sidecar records merkle root {report.recorded_root[:16]}... "
                f"but the snapshot hashes to {report.computed_root[:16]}..."
            )
            return report
        recorded_rows = sidecar.get("num_rows")
        if recorded_rows is not None and int(recorded_rows) != relation.num_rows:
            report.error = (
                f"sidecar records {recorded_rows} rows, snapshot holds "
                f"{relation.num_rows}"
            )
            return report
    report.ok = True
    return report


def _scan_namespace(directory: Path, tenant: str, backend: ComputeBackend,
                    table: "str | None") -> list[TableReport]:
    reports: list[TableReport] = []
    for path in sorted(directory.iterdir()):
        if path.is_dir() and path.name.endswith(".f2s"):
            if table is not None and path.name != table + ".f2s":
                continue
            reports.append(_verify_segment_dir(path, tenant, backend))
        elif path.is_file() and path.name.endswith(_SNAPSHOT_SUFFIX):
            if table is not None and path.name != table + _SNAPSHOT_SUFFIX:
                continue
            reports.append(_verify_snapshot(path, tenant))
    return reports


def verify_storage_dir(
    storage_dir: "str | Path",
    table: "str | None" = None,
    backend: "str | ComputeBackend | None" = None,
) -> list[TableReport]:
    """Verify every table under a server storage directory.

    ``table`` restricts the check to one table id (across all tenants).
    Returns one :class:`TableReport` per table found; an empty list means
    the directory holds no tables (the CLI reports that separately rather
    than calling it a pass).
    """
    root = Path(storage_dir)
    if not root.is_dir():
        raise StoreError(f"storage directory {root} does not exist")
    resolved = backend if isinstance(backend, ComputeBackend) else get_backend(backend)
    reports = _scan_namespace(root, "", resolved, table)
    for path in sorted(root.iterdir()):
        if path.is_dir() and not path.name.endswith(".f2s"):
            reports.extend(_scan_namespace(path, path.name, resolved, table))
    return reports

"""Shared fixtures for the F2 reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import F2Config
from repro.core.scheme import F2Scheme
from repro.crypto.keys import KeyGen
from repro.relational.table import Relation


@pytest.fixture
def paper_figure1_table() -> Relation:
    """The base table D of Figure 1 (a): FD A -> B, four rows."""
    return Relation(
        ["A", "B", "C"],
        [
            ["a1", "b1", "c1"],
            ["a1", "b1", "c2"],
            ["a1", "b1", "c3"],
            ["a1", "b1", "c1"],
        ],
        name="figure1",
    )


@pytest.fixture
def paper_figure3_table() -> Relation:
    """The table D of Figure 3 (a): two overlapping MASs {A,B} and {B,C}."""
    return Relation(
        ["A", "B", "C"],
        [
            ["a3", "b2", "c1"],
            ["a1", "b2", "c1"],
            ["a2", "b2", "c1"],
            ["a2", "b2", "c2"],
            ["a3", "b2", "c2"],
            ["a1", "b1", "c3"],
        ],
        name="figure3",
    )


@pytest.fixture
def paper_figure4_table() -> Relation:
    """The table D of Figure 4 (a): A -> B does *not* hold (C1 and C3 collide)."""
    rows = []
    rows += [["a1", "b1"]] * 5
    rows += [["a2", "b3"]] * 2
    rows += [["a1", "b2"]] * 4
    rows += [["a2", "b4"]] * 3
    return Relation(["A", "B"], rows, name="figure4")


@pytest.fixture
def zipcode_table() -> Relation:
    """A Zipcode -> City style table with duplicates and a free column."""
    rng = random.Random(11)
    cities = {"07030": "Hoboken", "07302": "JerseyCity", "07310": "JerseyCity"}
    rows = []
    for index in range(48):
        zipcode = rng.choice(list(cities))
        rows.append([zipcode, cities[zipcode], f"street-{index}", rng.choice(["N", "S"])])
    return Relation(["Zipcode", "City", "Street", "Side"], rows, name="zipcodes")


@pytest.fixture
def seeded_scheme() -> F2Scheme:
    """An F2 scheme with a deterministic key and the default configuration."""
    return F2Scheme(key=KeyGen.symmetric_from_seed(42), config=F2Config(alpha=0.25, seed=7))


@pytest.fixture
def strict_scheme() -> F2Scheme:
    """An F2 scheme with verification/repair enabled (strict guarantees)."""
    config = F2Config(alpha=0.25, seed=7, verify_and_repair=True)
    return F2Scheme(key=KeyGen.symmetric_from_seed(43), config=config)


def make_random_table(seed: int, num_rows: int | None = None, num_attributes: int = 4) -> Relation:
    """A small random categorical table used by randomized tests."""
    rng = random.Random(seed)
    num_rows = num_rows or rng.randint(8, 30)
    attributes = [f"X{index}" for index in range(num_attributes)]
    domains = [rng.randint(2, 4) for _ in attributes]
    rows = []
    for _ in range(num_rows):
        rows.append([f"v{index}_{rng.randrange(domain)}" for index, domain in enumerate(domains)])
    return Relation(attributes, rows, name=f"random-{seed}")

"""Cross-backend equivalence of the full pipeline (the engine's core contract).

Two layers:

* **Golden byte-identity** — seeded runs are pinned, via ciphertext hashes
  captured from the pre-refactor (seed) pipeline, so the pure-Python default
  stays byte-for-byte what it always produced — and the NumPy backend matches
  it exactly.
* **Property equivalence** — on random tables and seeds, both backends must
  yield identical ciphertext bytes, identical stats counters, and identical
  FD sets (TANE and MAS, plaintext and ciphertext).

Every RandomCell nonce comes from ``os.urandom``, so the tests patch it with
a seeded generator; everything else in a seeded run is already deterministic.
"""

from __future__ import annotations

import hashlib
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.pipeline import EncryptionPipeline
from repro.backend import numpy_available
from repro.bench.harness import dataset_by_name
from repro.core.config import F2Config
from repro.crypto.keys import KeyGen
from repro.fd.mas import find_maximal_attribute_sets
from repro.fd.tane import tane
from repro.relational.table import Relation

from tests.conftest import make_random_table

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")

#: sha256 over the serialized ciphertext table of seeded runs, captured from
#: the pre-refactor pipeline (commit 4b7269c) with os.urandom patched to
#: random.Random(1234).  Any change to these bytes is a breaking change to
#: the encryption output, whatever backend produced it.
GOLDEN_CIPHERTEXTS = {
    ("synthetic", 300, 0.25, 0): "789db56b07fe80c62a1731f70b56f0076c9a5593dbdcf132240777b76894558e",
    ("orders", 300, 0.2, 0): "dd50b4325e1545988013d8d487ef5a1efd0847e499ec133246a07dfca822a121",
    ("customer", 200, 0.25, 3): "7ca95fd13d14e7674aec8aeb5606828e6450e687f421eae7df7ea45219417636",
    ("synthetic", 250, 0.5, 1): "d3adc31c9dea9a422a23a72f2a4294e4d6d388a9c71950a217a4bb12df0aa8eb",
}

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


def _patch_urandom(monkeypatch, seed: int = 1234) -> None:
    rng = random.Random(seed)
    monkeypatch.setattr(
        "repro.crypto.probabilistic.os.urandom",
        lambda n: bytes(rng.getrandbits(8) for _ in range(n)),
    )


def _ciphertext_hash(relation: Relation) -> str:
    digest = hashlib.sha256()
    for row in relation.rows():
        for cell in row:
            digest.update(str(cell).encode())
            digest.update(b"|")
        digest.update(b"\n")
    return digest.hexdigest()


def _encrypt(relation: Relation, alpha: float, seed: int, backend: str):
    pipeline = EncryptionPipeline(
        key=KeyGen.symmetric_from_seed(seed),
        config=F2Config(alpha=alpha, seed=seed, backend=backend),
    )
    return pipeline.run(relation.copy())


def _comparable_stats(stats) -> dict:
    comparable = {
        key: value
        for key, value in stats.to_dict().items()
        if not key.startswith("seconds_")
    }
    # The configured backend name is the one input allowed to differ.
    comparable.pop("param_backend", None)
    return comparable


@pytest.mark.parametrize("case", sorted(GOLDEN_CIPHERTEXTS))
@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_ciphertext_bytes(monkeypatch, case, backend):
    dataset, rows, alpha, seed = case
    relation = dataset_by_name(dataset, rows, seed=seed)
    _patch_urandom(monkeypatch)
    encrypted = _encrypt(relation, alpha, seed, backend)
    assert _ciphertext_hash(encrypted.relation) == GOLDEN_CIPHERTEXTS[case], (
        f"{backend} backend no longer reproduces the seed pipeline's ciphertext "
        f"for {case}"
    )


@needs_numpy
@pytest.mark.parametrize("seed", [0, 1, 7, 23, 91])
def test_backends_byte_identical_on_random_tables(monkeypatch, seed):
    relation = make_random_table(seed, num_attributes=4)
    results = {}
    for backend in ("python", "numpy"):
        _patch_urandom(monkeypatch)
        results[backend] = _encrypt(relation, 0.34, seed, backend)
    python_result, numpy_result = results["python"], results["numpy"]
    assert python_result.relation == numpy_result.relation
    assert _comparable_stats(python_result.stats) == _comparable_stats(numpy_result.stats)
    assert [p.kind for p in python_result.provenance] == [
        p.kind for p in numpy_result.provenance
    ]


@needs_numpy
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(
    table_seed=st.integers(min_value=0, max_value=10_000),
    run_seed=st.integers(min_value=0, max_value=50),
    alpha=st.sampled_from([0.2, 0.34, 0.5, 1.0]),
)
def test_backend_equivalence_property(monkeypatch, table_seed, run_seed, alpha):
    """Identical FD sets, stats counters, and ciphertext bytes per backend."""
    relation = make_random_table(table_seed, num_attributes=4)

    assert find_maximal_attribute_sets(relation, backend="python") == (
        find_maximal_attribute_sets(relation, backend="numpy")
    )
    plain_python_fds = tane(relation, backend="python")
    assert plain_python_fds.equivalent_to(tane(relation, backend="numpy"))

    results = {}
    for backend in ("python", "numpy"):
        _patch_urandom(monkeypatch, seed=4321)
        results[backend] = _encrypt(relation, alpha, run_seed, backend)
    python_result, numpy_result = results["python"], results["numpy"]

    assert _ciphertext_hash(python_result.relation) == _ciphertext_hash(numpy_result.relation)
    assert _comparable_stats(python_result.stats) == _comparable_stats(numpy_result.stats)
    cipher_fds_python = tane(python_result.server_view(), backend="python")
    cipher_fds_numpy = tane(numpy_result.server_view(), backend="numpy")
    assert cipher_fds_python.equivalent_to(cipher_fds_numpy)


@needs_numpy
def test_env_selected_backend_matches_explicit(monkeypatch):
    relation = make_random_table(5, num_attributes=3)
    _patch_urandom(monkeypatch)
    explicit = _encrypt(relation, 0.34, 0, "numpy")
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    _patch_urandom(monkeypatch)
    via_env = _encrypt(relation, 0.34, 0, None)
    assert explicit.relation == via_env.relation
    assert via_env.stats.parameters["backend"] == "numpy"

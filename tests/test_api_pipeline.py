"""Tests of the composable encryption pipeline and the legacy facade."""

import random

import pytest

from repro.api.pipeline import (
    EncryptionContext,
    EncryptionPipeline,
    StageHook,
    StageRecorder,
)
from repro.api.stages import VerifyRepairStage, default_stages
from repro.core.config import F2Config
from repro.core.scheme import F2Scheme
from repro.crypto.keys import KeyGen
from repro.exceptions import EncryptionError
from repro.relational.table import Relation


@pytest.fixture
def deterministic_urandom(monkeypatch):
    """Replace the RandomCell nonce source with a seeded generator.

    Everything else in a seeded F2 run is already deterministic (the fresh
    factory and instance variants derive from the config seed and the key);
    patching ``os.urandom`` makes entire runs byte-for-byte comparable.
    """

    def install(seed: int = 1234):
        rng = random.Random(seed)
        monkeypatch.setattr(
            "repro.crypto.probabilistic.os.urandom",
            lambda n: bytes(rng.getrandbits(8) for _ in range(n)),
        )

    return install


def stats_without_timers(stats) -> dict:
    return {
        key: value
        for key, value in stats.to_dict().items()
        if not key.startswith("seconds_")
    }


class TestFacadeEquivalence:
    """F2Scheme.encrypt must be byte-for-byte the pipeline's output."""

    @pytest.mark.parametrize("fixture", ["zipcode_table", "paper_figure3_table"])
    def test_byte_for_byte_identical(self, request, deterministic_urandom, fixture):
        table = request.getfixturevalue(fixture)
        config = F2Config(alpha=0.25, seed=7)

        deterministic_urandom()
        legacy = F2Scheme(key=KeyGen.symmetric_from_seed(42), config=config).encrypt(table)

        deterministic_urandom()
        pipeline = EncryptionPipeline(key=KeyGen.symmetric_from_seed(42), config=config)
        direct = pipeline.run(table)

        assert legacy.relation == direct.relation  # every ciphertext byte
        assert legacy.provenance == direct.provenance
        assert legacy.masses == direct.masses
        assert legacy.ecg_summaries == direct.ecg_summaries
        assert stats_without_timers(legacy.stats) == stats_without_timers(direct.stats)

    def test_seeded_runs_are_reproducible(self, zipcode_table, deterministic_urandom):
        config = F2Config(alpha=0.25, seed=7)

        deterministic_urandom()
        first = F2Scheme(key=KeyGen.symmetric_from_seed(42), config=config).encrypt(zipcode_table)
        deterministic_urandom()
        second = F2Scheme(key=KeyGen.symmetric_from_seed(42), config=config).encrypt(zipcode_table)
        assert first.relation == second.relation

    def test_facade_decrypt_roundtrip(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        decrypted = seeded_scheme.decrypt(encrypted)
        assert sorted(map(tuple, decrypted.rows())) == sorted(
            tuple(map(str, row)) for row in zipcode_table.rows()
        )

    def test_facade_exposes_pipeline(self, seeded_scheme):
        assert isinstance(seeded_scheme.pipeline, EncryptionPipeline)
        assert seeded_scheme.config is seeded_scheme.pipeline.config
        assert seeded_scheme.key is seeded_scheme.pipeline.key

    def test_facade_rejects_pipeline_with_key_or_config(self):
        from repro.exceptions import ConfigurationError

        pipeline = EncryptionPipeline(config=F2Config(seed=1))
        with pytest.raises(ConfigurationError):
            F2Scheme(key=KeyGen.symmetric_from_seed(1), pipeline=pipeline)
        with pytest.raises(ConfigurationError):
            F2Scheme(config=F2Config(seed=2), pipeline=pipeline)
        assert F2Scheme(pipeline=pipeline).pipeline is pipeline


class TestPipelineMechanics:
    def test_default_stage_names(self):
        pipeline = EncryptionPipeline(config=F2Config(seed=1))
        assert pipeline.stage_names() == ["MAX", "SSE", "SYN", "FP", "MATERIALIZE", "REPAIR"]

    def test_stages_after(self):
        pipeline = EncryptionPipeline(config=F2Config(seed=1))
        tail = [stage.name for stage in pipeline.stages_after("SSE")]
        assert tail == ["SYN", "FP", "MATERIALIZE", "REPAIR"]
        with pytest.raises(EncryptionError):
            pipeline.stages_after("NOPE")

    def test_empty_relation_rejected(self):
        pipeline = EncryptionPipeline(config=F2Config(seed=1))
        with pytest.raises(EncryptionError):
            pipeline.run(Relation(["A"]))

    def test_timing_hook_fills_stats(self, zipcode_table):
        pipeline = EncryptionPipeline(key=KeyGen.symmetric_from_seed(2), config=F2Config(seed=2))
        encrypted = pipeline.run(zipcode_table)
        timers = encrypted.stats.step_seconds()
        assert all(seconds >= 0 for seconds in timers.values())
        assert encrypted.stats.seconds_total > 0
        # The paper folds materialisation into SSE.
        assert encrypted.stats.seconds_sse >= encrypted.stats.seconds_materialize

    def test_stage_recorder_observes_every_stage(self, zipcode_table):
        recorder = StageRecorder()
        pipeline = EncryptionPipeline(
            key=KeyGen.symmetric_from_seed(2), config=F2Config(seed=2), hooks=[recorder]
        )
        pipeline.run(zipcode_table)
        assert [record.stage for record in recorder.records] == pipeline.stage_names()
        assert recorder.total_seconds > 0
        assert set(recorder.to_dict()) == set(pipeline.stage_names())

    def test_custom_hook_sees_context(self, zipcode_table):
        seen: list[str] = []

        class Spy(StageHook):
            def on_pipeline_start(self, ctx):
                seen.append("start")

            def on_stage_end(self, stage, ctx, seconds):
                seen.append(stage.name)

            def on_pipeline_end(self, ctx, seconds):
                seen.append("end")

        pipeline = EncryptionPipeline(
            key=KeyGen.symmetric_from_seed(2), config=F2Config(seed=2), hooks=[Spy()]
        )
        pipeline.run(zipcode_table)
        assert seen[0] == "start" and seen[-1] == "end"
        assert seen[1:-1] == pipeline.stage_names()

    def test_custom_stage_injection(self, zipcode_table):
        class AnnotateStage:
            name = "ANNOTATE"

            def run(self, ctx: EncryptionContext) -> None:
                ctx.metadata["annotated"] = True

        config = F2Config(seed=2)
        stages = [AnnotateStage()] + default_stages(config)
        pipeline = EncryptionPipeline(
            key=KeyGen.symmetric_from_seed(2), config=config, stages=stages
        )
        encrypted = pipeline.run(zipcode_table)
        assert encrypted.metadata["annotated"] is True

    def test_pipeline_without_materialisation_fails(self, zipcode_table):
        config = F2Config(seed=2)
        stages = [s for s in default_stages(config) if s.name != "MATERIALIZE"]
        pipeline = EncryptionPipeline(
            key=KeyGen.symmetric_from_seed(2), config=config, stages=stages
        )
        with pytest.raises(EncryptionError):
            pipeline.run(zipcode_table)


class TestRepairStageImmutableStats:
    """Satellite regression: repair must not mutate the pre-repair stats."""

    def _context_after_main_stages(self, table):
        # Disable Step 4 so the ciphertext keeps a false-positive FD; the
        # repair stage must then actually trigger.
        config = F2Config(
            alpha=0.5, seed=3, eliminate_false_positives=False, verify_and_repair=True
        )
        pipeline = EncryptionPipeline(key=KeyGen.symmetric_from_seed(9), config=config)
        ctx = pipeline.new_context(table)
        main_stages = [stage for stage in pipeline.stages if stage.name != "REPAIR"]
        pre = pipeline.execute(ctx, stages=main_stages)
        return pipeline, ctx, pre

    def test_repair_produces_fresh_stats(self, paper_figure4_table):
        pipeline, ctx, pre = self._context_after_main_stages(paper_figure4_table)
        pre_stats = pre.stats
        pre_fp_rows = pre_stats.rows_added_false_positive

        post = pipeline.execute(ctx, stages=[VerifyRepairStage()])
        assert post.stats.num_repaired_false_positives > 0  # the pass fired
        assert post.stats is not pre_stats
        # The caller's pre-repair table is untouched.
        assert pre_stats.num_repaired_false_positives == 0
        assert pre_stats.rows_added_false_positive == pre_fp_rows
        assert post.stats.rows_added_false_positive > pre_fp_rows
        assert post.num_rows > pre.num_rows

    def test_stats_copy_is_independent(self):
        from repro.core.stats import EncryptionStats

        stats = EncryptionStats(rows_original=5, parameters={"alpha": 0.5})
        clone = stats.copy()
        clone.rows_added_scale = 7
        clone.parameters["alpha"] = 0.1
        assert stats.rows_added_scale == 0
        assert stats.parameters["alpha"] == 0.5

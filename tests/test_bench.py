"""Tests for the benchmark harness, sweeps, and reporting (tiny scales)."""

import pytest

from repro.bench.harness import (
    approximate_megabytes,
    dataset_by_name,
    measure_baselines,
    run_f2,
    time_tane,
)
from repro.bench.reporting import format_table, write_csv
from repro.bench.sweeps import (
    fig6_time_vs_alpha,
    fig7_time_vs_size,
    fig9_overhead,
    fig10_discovery_overhead,
    sec54_local_vs_outsourcing,
    security_attack_evaluation,
    table1_dataset_description,
)
from repro.exceptions import DatasetError


class TestHarness:
    def test_dataset_by_name(self):
        for name, attributes in (("orders", 9), ("customer", 21), ("synthetic", 7)):
            relation = dataset_by_name(name, 60)
            assert relation.num_attributes == attributes
            assert relation.num_rows == 60

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            dataset_by_name("lineitem", 10)

    def test_run_f2_returns_encrypted_table(self):
        relation = dataset_by_name("synthetic", 80)
        encrypted = run_f2(relation, alpha=0.5, seed=1)
        assert encrypted.num_rows >= 80
        assert encrypted.config.alpha == 0.5

    def test_run_f2_accepts_config_overrides(self):
        relation = dataset_by_name("synthetic", 60)
        encrypted = run_f2(relation, alpha=0.5, eliminate_false_positives=False)
        assert encrypted.stats.rows_added_false_positive == 0

    def test_time_tane(self):
        result = time_tane(dataset_by_name("synthetic", 60), max_lhs_size=2)
        assert result.elapsed_seconds >= 0

    def test_measure_baselines_orders_paillier_slowest(self):
        relation = dataset_by_name("orders", 40)
        timings = measure_baselines(relation, alpha=0.5, paillier_bits=160, paillier_cell_limit=40)
        assert timings.cells == 40 * 9
        assert timings.paillier_seconds > 0
        assert timings.f2_seconds > 0
        assert timings.aes_seconds > 0

    def test_approximate_megabytes_positive(self):
        assert approximate_megabytes(dataset_by_name("orders", 30)) > 0


class TestSweeps:
    def test_table1(self):
        rows = table1_dataset_description(sizes={"orders": 50, "synthetic": 50})
        assert {row["dataset"] for row in rows} == {"orders", "synthetic"}
        for row in rows:
            assert row["tuples"] == 50

    def test_fig6_rows_have_step_columns(self):
        rows = fig6_time_vs_alpha(dataset="synthetic", num_rows=60, alphas=(0.5, 0.25))
        assert len(rows) == 2
        for row in rows:
            assert {"MAX_seconds", "SSE_seconds", "SYN_seconds", "FP_seconds"} <= set(row)

    def test_fig7_sizes_reported(self):
        rows = fig7_time_vs_size(dataset="synthetic", sizes=(40, 80), alpha=0.5)
        assert [row["rows"] for row in rows] == [40, 80]

    def test_fig9_alpha_and_size_sweeps(self):
        rows = fig9_overhead(
            dataset="customer", num_rows=60, alphas=(0.5,), sizes=(40,), alpha_for_sizes=0.5
        )
        sweeps = {row["sweep"] for row in rows}
        assert sweeps == {"alpha", "size"}

    def test_fig9_empty_alpha_skips_alpha_sweep(self):
        rows = fig9_overhead(dataset="customer", num_rows=60, alphas=(), sizes=(40,))
        assert {row["sweep"] for row in rows} == {"size"}

    def test_fig10_overhead_fields(self):
        rows = fig10_discovery_overhead(
            dataset="synthetic", num_rows=60, alphas=(0.5,), max_lhs_size=2
        )
        assert rows[0]["fds_plaintext"] >= 0
        assert "time_overhead" in rows[0]

    def test_sec54_fields(self):
        rows = sec54_local_vs_outsourcing(dataset="synthetic", sizes=(40,), alpha=0.5)
        assert rows[0]["local_fd_discovery_seconds"] >= 0
        assert rows[0]["f2_encryption_seconds"] > 0

    def test_security_attack_evaluation_rows(self):
        rows = security_attack_evaluation(
            dataset="orders", num_rows=80, alphas=(0.5,), trials=50
        )
        schemes = {row["scheme"] for row in rows}
        assert schemes == {"deterministic", "f2"}
        for row in rows:
            assert 0.0 <= row["success_rate"] <= 1.0


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z", "c": 3.5}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "c" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_float_formatting(self):
        text = format_table([{"x": 0.123456}])
        assert "0.1235" in text

    def test_write_csv_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y", "c": 3}]
        path = write_csv(rows, tmp_path / "out" / "results.csv")
        content = path.read_text().splitlines()
        assert content[0] == "a,b,c"
        assert len(content) == 3

"""Tests of the protocol layer: messages, transports, persistence, queries."""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    DataOwner,
    DiscoverRequest,
    ErrorReply,
    LoopbackTransport,
    Message,
    ProtocolClient,
    ProtocolServer,
    QueryRequest,
    RemoteOwnerSession,
    ServiceProvider,
    SocketProtocolServer,
    SocketTransport,
    run_protocol,
)
from repro.core.config import F2Config
from repro.exceptions import EncryptionError, ProtocolError, QueryError, WireError
from repro.fd.tane import tane
from repro.relational.table import Relation
from repro.wire import WIRE_FORMS

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def make_owner(alpha: float = 0.25, seed: int = 7, key_seed: int = 42) -> DataOwner:
    return DataOwner.from_seed(key_seed, config=F2Config(alpha=alpha, seed=seed))


def ciphertext_rows(relation: Relation) -> list[tuple[str, ...]]:
    """Rows in their exact textual (byte-level) ciphertext form."""
    return [tuple(str(value) for value in row) for row in relation.rows()]


@pytest.fixture
def loopback_client() -> ProtocolClient:
    return ProtocolClient(LoopbackTransport(ProtocolServer()))


@pytest.fixture
def deterministic_urandom(monkeypatch):
    """Seeded nonce source: makes two full owner runs byte-for-byte equal.

    Instance ciphertexts and artificial values already derive from the key
    and the config seed; only the fresh random nonces of frequency-one
    (RandomCell) encryptions consume ``os.urandom``.
    """
    import random as _random

    def install(seed: int = 1234):
        rng = _random.Random(seed)
        monkeypatch.setattr(
            "repro.crypto.probabilistic.os.urandom",
            lambda n: bytes(rng.getrandbits(8) for _ in range(n)),
        )

    return install


# ----------------------------------------------------------------------
# Message envelope
# ----------------------------------------------------------------------
class TestMessages:
    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_discover_request_roundtrip(self, form):
        message = DiscoverRequest(table_id="orders", max_lhs_size=3)
        decoded = Message.decode(message.encode(form))
        assert decoded == message

    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_query_request_roundtrip(self, zipcode_table, form):
        owner = make_owner()
        owner.outsource(zipcode_table)
        token = owner.derive_search_token("City", "Hoboken")
        message = QueryRequest(table_id="default", attribute="City", token=token)
        decoded = Message.decode(message.encode(form))
        assert decoded == message
        assert decoded.token == token

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireError):
            Message.decode(b'{"protocol":"f2/1","kind":"nope","meta":{}}')

    def test_bad_table_id_rejected(self):
        for bad in ("", "../evil", "a/b", "x" * 80, ".hidden"):
            with pytest.raises((ProtocolError, WireError)):
                Message.decode(
                    ('{"protocol":"f2/1","kind":"discover_request","meta":'
                     f'{{"table_id":"{bad}"}}}}').encode()
                )


# ----------------------------------------------------------------------
# Loopback end-to-end
# ----------------------------------------------------------------------
class TestLoopbackProtocol:
    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_outsource_discover_matches_inprocess(self, zipcode_table, form):
        reference = run_protocol(make_owner(), ServiceProvider(), zipcode_table)

        owner = make_owner()
        client = ProtocolClient(LoopbackTransport(ProtocolServer()), wire_format=form)
        session = RemoteOwnerSession(owner, client)
        session.outsource(zipcode_table)
        result = session.discover_fds()
        assert result.parameters["validated"] is True
        assert result.fds == reference.fds

    def test_discover_unknown_table_is_protocol_error(self, loopback_client):
        with pytest.raises(ProtocolError):
            loopback_client.discover("nope")

    def test_error_reply_carries_stable_code(self):
        # Clients branch on the wire-level ErrorCode, never on message text.
        from repro.api.auth import ErrorCode

        server = ProtocolServer()
        reply = Message.decode(
            server.handle_bytes(DiscoverRequest(table_id="missing").encode())
        )
        assert isinstance(reply, ErrorReply)
        assert reply.code == ErrorCode.UNKNOWN_TABLE.value

    def test_garbage_bytes_produce_error_reply(self):
        from repro.api.auth import ErrorCode

        server = ProtocolServer()
        reply = Message.decode(server.handle_bytes(b"\x00\xff garbage"))
        assert isinstance(reply, ErrorReply)
        assert reply.code == ErrorCode.WIRE_MALFORMED.value

    def test_corrupted_meta_produces_error_reply_not_exception(self):
        # Non-Repro exceptions (bad UTF-8 meta, mistyped fields) must also
        # become error replies — a malformed request must never kill the
        # server's connection handler.
        server = ProtocolServer()
        from repro.api.protocol import MESSAGE_MAGIC, MESSAGE_VERSION
        from repro.wire.binary import ByteWriter

        writer = ByteWriter()
        writer.raw(MESSAGE_MAGIC)
        writer.raw(bytes([MESSAGE_VERSION]))
        writer.lp_str("discover_request")
        writer.lp_bytes(b"\xff\xfe not utf8 json")
        writer.uvarint(0)
        reply = Message.decode(server.handle_bytes(writer.getvalue()))
        assert isinstance(reply, ErrorReply)

        mistyped = (
            b'{"protocol":"f2/1","kind":"discover_request",'
            b'"meta":{"table_id":"t","max_lhs_size":"abc"}}'
        )
        reply = Message.decode(server.handle_bytes(mistyped))
        assert isinstance(reply, ErrorReply)

    def test_snapshot_requires_storage(self, loopback_client, zipcode_table):
        owner = make_owner()
        encrypted = owner.outsource(zipcode_table)
        loopback_client.outsource("default", encrypted.server_view())
        with pytest.raises(ProtocolError):
            loopback_client.save_snapshot("default")


# ----------------------------------------------------------------------
# The facade bug fix: receive() must clear the stale discovery
# ----------------------------------------------------------------------
class TestReceiveClearsDiscovery:
    def test_last_discovery_cleared_on_receive(self, zipcode_table):
        # Regression: receive() used to replace the table but keep
        # _last_discovery, so callers saw a result describing the *old*
        # ciphertext as if it were current.
        owner = make_owner()
        provider = ServiceProvider()
        run_protocol(owner, provider, zipcode_table)
        assert provider.last_discovery is not None

        owner.insert_rows([["07030", "Hoboken", "street-new", "N"]])
        provider.receive(owner.server_view())
        assert provider.last_discovery is None

        refreshed = provider.discover_fds()
        assert provider.last_discovery is not None
        assert provider.last_discovery.fds == refreshed.fds

    def test_last_discovery_cleared_per_table(self, zipcode_table):
        owner = make_owner()
        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        view = owner.outsource(zipcode_table).server_view()
        client.outsource("a", view)
        client.outsource("b", view)
        client.discover("a")
        client.discover("b")
        client.outsource("a", view)
        assert server.last_discovery("a") is None
        assert server.last_discovery("b") is not None


# ----------------------------------------------------------------------
# Socket transport end-to-end
# ----------------------------------------------------------------------
class TestSocketProtocol:
    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_socket_discovery_byte_identical_to_inprocess(
        self, zipcode_table, form, deterministic_urandom
    ):
        deterministic_urandom()
        in_owner = make_owner()
        in_provider = ServiceProvider()
        reference = run_protocol(in_owner, in_provider, zipcode_table)
        reference_view = ciphertext_rows(in_provider.table)

        with SocketProtocolServer(ProtocolServer()) as sock_server:
            sock_server.serve_in_background()
            deterministic_urandom()
            owner = make_owner()
            transport = SocketTransport("127.0.0.1", sock_server.port)
            session = RemoteOwnerSession(owner, ProtocolClient(transport, wire_format=form))
            session.outsource(zipcode_table)
            result = session.discover_fds()
            session.close()
            stored = sock_server.protocol_server.store()

        # The ciphertext stored across the socket is byte-identical to the
        # in-process server view, and so is everything derived from it.
        assert ciphertext_rows(stored) == reference_view
        assert result.fds == reference.fds
        assert result.parameters["validated"] is True
        assert result.parameters["validated"] == reference.parameters["validated"]

    def test_socket_insert_and_requery(self, zipcode_table):
        with SocketProtocolServer(ProtocolServer()) as sock_server:
            sock_server.serve_in_background()
            owner = make_owner()
            session = RemoteOwnerSession(
                owner, ProtocolClient(SocketTransport(port=sock_server.port))
            )
            session.outsource(zipcode_table)
            session.insert_rows([["07030", "Hoboken", "street-x1", "S"]])
            matches = session.query("Zipcode", "07030")
            expected = owner.select_plaintext("Zipcode", "07030")
            assert list(matches.rows()) == list(expected.rows())
            session.close()

    def test_transport_reports_connection_failure(self):
        transport = SocketTransport("127.0.0.1", 1)  # nothing listens here
        with pytest.raises(ProtocolError):
            ProtocolClient(transport).discover("default")

    def test_shutdown_before_serving_does_not_hang(self):
        # Regression: BaseServer.shutdown() blocks on an event only
        # serve_forever() sets; a `with` body raising before the serve loop
        # starts must still exit cleanly.
        with SocketProtocolServer(ProtocolServer()):
            pass  # __exit__ calls shutdown() with no serve loop running

    def test_concurrent_receive_never_caches_stale_discovery(self, zipcode_table):
        # Regression for the threaded-server variant of the stale-discovery
        # bug: a discovery computed on an old ciphertext must not be cached
        # after a receive replaced the store mid-run.
        owner = make_owner()
        view = owner.outsource(zipcode_table).server_view()
        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        client.outsource("default", view)

        original_tane = __import__("repro.fd.tane", fromlist=["tane_with_stats"]).tane_with_stats

        def racing_tane(relation, **kwargs):
            result = original_tane(relation, **kwargs)
            # Simulate a receive landing while TANE was running.
            client.outsource("default", view)
            return result

        import repro.api.protocol as protocol_module

        saved = protocol_module.tane_with_stats
        protocol_module.tane_with_stats = racing_tane
        try:
            client.discover("default")
        finally:
            protocol_module.tane_with_stats = saved
        assert server.last_discovery("default") is None


# ----------------------------------------------------------------------
# Snapshot persistence across restarts
# ----------------------------------------------------------------------
class TestPersistence:
    def test_store_survives_restart(self, zipcode_table, tmp_path):
        owner = make_owner()
        view = owner.outsource(zipcode_table).server_view()

        first = ProtocolServer(storage_dir=tmp_path)
        ProtocolClient(LoopbackTransport(first)).outsource("orders", view)
        fds_before = tane(first.store("orders"))

        # A brand-new server over the same directory resumes serving the
        # byte-identical store without a re-outsource.
        second = ProtocolServer(storage_dir=tmp_path)
        assert second.table_ids() == ["orders"]
        assert ciphertext_rows(second.store("orders")) == ciphertext_rows(view)
        assert tane(second.store("orders")) == fds_before

    def test_explicit_save_and_load(self, zipcode_table, tmp_path):
        owner = make_owner()
        view = owner.outsource(zipcode_table).server_view()
        client = ProtocolClient(LoopbackTransport(ProtocolServer(storage_dir=tmp_path)))
        client.outsource("orders", view)
        path = client.save_snapshot("orders")
        assert path.endswith("orders.f2t")
        assert client.load_snapshot("orders") == view.num_rows

    def test_provider_facade_persists(self, zipcode_table, tmp_path):
        owner = make_owner()
        provider = ServiceProvider(storage_dir=str(tmp_path))
        run_protocol(owner, provider, zipcode_table)
        revived = ServiceProvider(storage_dir=str(tmp_path))
        assert ciphertext_rows(revived.table) == ciphertext_rows(provider.table)


# ----------------------------------------------------------------------
# Token-based equality queries
# ----------------------------------------------------------------------
class TestTokenQueries:
    @pytest.fixture
    def outsourced(self, zipcode_table):
        owner = make_owner()
        provider = ServiceProvider()
        owner.outsource(zipcode_table)
        provider.receive(owner.server_view())
        return owner, provider, zipcode_table

    def selection(self, relation: Relation, attribute: str, value: str):
        return [row for row in relation.rows() if row[relation.schema.index_of(attribute)] == value]

    @pytest.mark.parametrize(
        "attribute,value",
        [("Zipcode", "07030"), ("Zipcode", "07310"), ("City", "JerseyCity"), ("City", "Hoboken")],
    )
    def test_query_equals_plaintext_selection(self, outsourced, attribute, value):
        owner, provider, table = outsourced
        token = owner.derive_search_token(attribute, value)
        assert token, "a value present in the table must yield a non-empty token"
        result = provider.answer_query(attribute, token)
        decrypted = owner.decrypt_query_result(result)
        assert list(decrypted.rows()) == self.selection(table, attribute, value)

    def test_absent_value_yields_empty_result(self, outsourced):
        owner, provider, _ = outsourced
        token = owner.derive_search_token("City", "Atlantis")
        result = provider.answer_query("City", token)
        assert result.row_indexes == ()
        assert owner.decrypt_query_result(result).num_rows == 0

    def test_rows_attachment_is_opt_in(self, outsourced):
        # The owner path consumes only row_indexes; matched ciphertext rows
        # ship back only when explicitly requested.
        owner, provider, _ = outsourced
        token = owner.derive_search_token("City", "Hoboken")
        lean = provider.answer_query("City", token)
        assert lean.rows is None
        full = provider.answer_query("City", token, include_rows=True)
        assert full.row_indexes == lean.row_indexes
        assert full.rows is not None
        assert full.rows.num_rows == len(full.row_indexes)
        assert list(full.rows.rows()) == [
            provider.table.row(index) for index in full.row_indexes
        ]

    def test_matches_are_supersets_with_artificial_rows(self, outsourced):
        # The raw server-side matches include scaling copies (that is the
        # frequency-hiding working as designed); provenance filtering on the
        # owner side strips them.
        owner, provider, table = outsourced
        token = owner.derive_search_token("City", "JerseyCity")
        result = provider.answer_query("City", token)
        plaintext_matches = len(self.selection(table, "City", "JerseyCity"))
        assert len(result.row_indexes) >= plaintext_matches

    def test_token_for_uncovered_attribute_raises(self, outsourced):
        owner, _, _ = outsourced
        # Street values are unique, so Street lies outside every MAS.
        assert "Street" not in owner.queryable_attributes()
        with pytest.raises(QueryError):
            owner.derive_search_token("Street", "street-1")

    def test_remote_session_falls_back_locally(self, zipcode_table):
        owner = make_owner()
        provider = ServiceProvider()
        session = RemoteOwnerSession(owner, provider.client)
        session.outsource(zipcode_table)
        result = session.query("Street", "street-1")
        assert list(result.rows()) == self.selection(zipcode_table, "Street", "street-1")

    def test_unknown_attribute_raises(self, outsourced):
        owner, provider, _ = outsourced
        with pytest.raises(QueryError):
            owner.derive_search_token("Nope", "x")
        with pytest.raises(ProtocolError):
            provider.answer_query("Nope", ())

    def test_query_after_insert_reflects_new_rows(self, zipcode_table):
        owner = make_owner()
        provider = ServiceProvider()
        session = RemoteOwnerSession(owner, provider.client)
        session.outsource(zipcode_table)
        session.insert_rows(
            [["07030", "Hoboken", "street-ins-1", "N"], ["07302", "JerseyCity", "street-ins-2", "S"]]
        )
        for attribute, value in [("Zipcode", "07030"), ("City", "JerseyCity")]:
            got = session.query(attribute, value)
            expected = owner.select_plaintext(attribute, value)
            assert list(got.rows()) == list(expected.rows())

    def test_provider_requires_received_table(self):
        provider = ServiceProvider()
        with pytest.raises(EncryptionError):
            provider.answer_query("City", ())

    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_plan_query_roundtrip(self, zipcode_table, form):
        owner = make_owner()
        owner.outsource(zipcode_table)
        plan = owner.plan_query("City = Hoboken and Zipcode = '07030'")
        from repro.api import PlanQueryRequest, PlanQueryResult
        from repro.query import collect_leaves, server_expr_to_doc

        request = PlanQueryRequest(table_id="orders", expr=plan.server)
        decoded = Message.decode(request.encode(form))
        assert isinstance(decoded, PlanQueryRequest)
        assert decoded.table_id == "orders"
        # Structure and tokens survive; owner-side plaintext annotations are
        # stripped by design (see test_query_planner wire-hygiene tests).
        assert server_expr_to_doc(decoded.expr) == server_expr_to_doc(plan.server)
        assert [leaf.token for leaf in collect_leaves(decoded.expr)] == [
            leaf.token for leaf in collect_leaves(plan.server)
        ]

        result = PlanQueryResult(
            table_id="orders",
            row_indexes=(1, 4, 7),
            leaf_match_counts=(3, 5),
            num_rows=96,
        )
        assert Message.decode(result.encode(form)) == result

    def test_plan_query_result_requires_num_rows(self):
        # num_rows anchors the leakage denominator and the owner's desync
        # check; a reply without it must fail to decode, not default to 0.
        with pytest.raises(WireError):
            Message.decode(
                b'{"protocol":"f2/1","kind":"plan_query_result","meta":'
                b'{"table_id":"t","row_indexes":[],"leaf_match_counts":[]}}'
            )

    @SLOW
    @given(st.integers(min_value=0, max_value=7), st.sampled_from([0.5, 0.34]))
    def test_query_equals_selection_on_random_tables(self, seed, alpha):
        from tests.conftest import make_random_table

        table = make_random_table(seed + 900, num_attributes=4)
        owner = DataOwner.from_seed(seed, config=F2Config(alpha=alpha, seed=seed))
        provider = ServiceProvider()
        session = RemoteOwnerSession(owner, provider.client)
        session.outsource(table)
        # Query every (attribute, value) pair of the table.
        for attribute in table.attributes:
            for value in sorted(set(table.column(attribute))):
                got = session.query(attribute, value)
                expected = owner.select_plaintext(attribute, value)
                assert list(got.rows()) == list(expected.rows()), (attribute, value)


# ----------------------------------------------------------------------
# Per-table read/write locking
# ----------------------------------------------------------------------
class TestRWLock:
    def test_readers_share_the_lock(self):
        from repro.api.protocol import _RWLock

        lock = _RWLock()
        both_inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                both_inside.wait()  # raises BrokenBarrierError on timeout

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        # If readers serialized, the barrier would have timed out and the
        # join left a thread alive.
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_readers_and_writers(self):
        from repro.api.protocol import _RWLock

        lock = _RWLock()
        writer_inside = threading.Event()
        release_writer = threading.Event()
        reader_entered = threading.Event()

        def writer():
            with lock.write():
                writer_inside.set()
                release_writer.wait(timeout=5)

        def reader():
            with lock.read():
                reader_entered.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        assert writer_inside.wait(timeout=5)
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        # The reader must block while the writer holds the lock ...
        assert not reader_entered.wait(timeout=0.2)
        release_writer.set()
        # ... and proceed once it releases.
        assert reader_entered.wait(timeout=5)
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)

    def test_waiting_writer_blocks_new_readers(self):
        from repro.api.protocol import _RWLock

        lock = _RWLock()
        first_reader_in = threading.Event()
        release_first_reader = threading.Event()
        writer_done = threading.Event()
        second_reader_done = threading.Event()

        def first_reader():
            with lock.read():
                first_reader_in.set()
                release_first_reader.wait(timeout=5)

        def writer():
            with lock.write():
                writer_done.set()

        def second_reader():
            with lock.read():
                second_reader_done.set()

        threads = [threading.Thread(target=first_reader)]
        threads[0].start()
        assert first_reader_in.wait(timeout=5)
        threads.append(threading.Thread(target=writer))
        threads[1].start()
        # Give the writer time to queue, then start a new reader: writer
        # preference makes it wait behind the writer (no writer starvation).
        import time as _time

        _time.sleep(0.1)
        threads.append(threading.Thread(target=second_reader))
        threads[2].start()
        assert not writer_done.is_set()
        assert not second_reader_done.wait(timeout=0.2)
        release_first_reader.set()
        assert writer_done.wait(timeout=5)
        assert second_reader_done.wait(timeout=5)
        for thread in threads:
            thread.join(timeout=5)


class TestLockRegistryHygiene:
    def test_probing_unknown_tables_does_not_grow_the_lock_registry(
        self, zipcode_table, tmp_path
    ):
        # Untrusted clients can send any path-safe table id; read requests
        # for tables the server does not hold must be rejected before a
        # per-table lock is allocated, or remote input grows server memory
        # without bound.
        owner = make_owner()
        owner.outsource(zipcode_table)
        plan = owner.plan_query("City = Hoboken")
        server = ProtocolServer(storage_dir=tmp_path)
        client = ProtocolClient(LoopbackTransport(server))
        for index in range(20):
            with pytest.raises(ProtocolError):
                client.plan_query(f"ghost-{index}", plan.server)
            with pytest.raises(ProtocolError):
                client.query(f"ghost-{index}", "City", ())
            with pytest.raises(ProtocolError):
                client.save_snapshot(f"ghost-{index}")
            with pytest.raises(ProtocolError):
                client.load_snapshot(f"ghost-{index}")
        assert server._table_locks == {}
        # Legitimate traffic still allocates (and reuses) exactly one lock.
        client.outsource("real", owner.server_view())
        client.plan_query("real", plan.server)
        assert list(server._table_locks) == ["real"]


class TestConcurrentQueries:
    def test_parallel_queries_with_concurrent_mutations_stay_consistent(
        self, zipcode_table
    ):
        # Regression for the per-table locking: threaded clients fire plan
        # queries against one table while another thread keeps replacing the
        # store with one of two known ciphertext versions.  Every reply must
        # be exactly the match set of one of the two versions — never a
        # mixture, never an exception.
        owner = make_owner()
        owner.outsource(zipcode_table)
        view_a = owner.server_view()
        plan = owner.plan_query("City = Hoboken or Zipcode = '07302'")
        result_a = frozenset(
            __import__("repro.query", fromlist=["execute_server_expr"])
            .execute_server_expr(view_a.coded(), plan.server)[0]
        )

        owner_b = make_owner()
        owner_b.outsource(zipcode_table)
        owner_b.insert_rows([["07030", "Hoboken", "street-extra", "N"]])
        view_b = owner_b.server_view()
        plan_b = owner_b.plan_query("City = Hoboken or Zipcode = '07302'")
        from repro.query import execute_server_expr

        result_b = frozenset(execute_server_expr(view_b.coded(), plan_b.server)[0])
        # The two versions genuinely differ (otherwise the test proves nothing).
        assert result_a != result_b

        server = ProtocolServer()
        writer_client = ProtocolClient(LoopbackTransport(server))
        writer_client.outsource("default", view_a)

        errors: list[Exception] = []
        observed: set[frozenset] = set()
        stop = threading.Event()

        def mutate():
            try:
                for round_index in range(30):
                    view = view_a if round_index % 2 else view_b
                    writer_client.outsource("default", view)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def query_loop():
            client = ProtocolClient(LoopbackTransport(server))
            try:
                while not stop.is_set():
                    reply = client.plan_query("default", plan.server)
                    observed.add(frozenset(reply.row_indexes))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=query_loop) for _ in range(4)]
        threads.append(threading.Thread(target=mutate))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert observed  # the readers actually ran
        # Both tokens were derived for view_a's ciphertexts; against view_b
        # the same plan still matches a well-defined (possibly different)
        # row set.  Either way: only complete per-version answers may appear.
        allowed = {result_a, frozenset(execute_server_expr(view_b.coded(), plan.server)[0])}
        assert observed <= allowed

    def test_snapshot_of_one_table_does_not_block_queries_of_another(
        self, zipcode_table, tmp_path
    ):
        # Two tables on one persistent server: a (write-locked) receive of
        # table "a" must not serialize a query against table "b".  The
        # receive is held open by monkey-patched snapshot IO; the query of
        # "b" must complete while "a"'s write is still in flight.
        owner = make_owner()
        owner.outsource(zipcode_table)
        view = owner.server_view()
        plan = owner.plan_query("City = Hoboken")

        server = ProtocolServer(storage_dir=tmp_path)
        setup = ProtocolClient(LoopbackTransport(server))
        setup.outsource("a", view)
        setup.outsource("b", view)

        in_write = threading.Event()
        release_write = threading.Event()
        original = ProtocolServer._write_snapshot

        def slow_snapshot(self, table_id, relation, store=None):
            if table_id == "a":
                in_write.set()
                assert release_write.wait(timeout=10)
            return original(self, table_id, relation, store=store)

        query_done = threading.Event()
        errors: list[Exception] = []

        def receive_a():
            try:
                ProtocolClient(LoopbackTransport(server)).outsource("a", view)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def query_b():
            try:
                reply = ProtocolClient(LoopbackTransport(server)).plan_query(
                    "b", plan.server
                )
                assert reply.num_rows == view.num_rows
                query_done.set()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        ProtocolServer._write_snapshot = slow_snapshot
        try:
            writer = threading.Thread(target=receive_a)
            writer.start()
            assert in_write.wait(timeout=10)
            reader = threading.Thread(target=query_b)
            reader.start()
            # The query of "b" completes while "a"'s write lock is held.
            assert query_done.wait(timeout=10)
        finally:
            release_write.set()
            ProtocolServer._write_snapshot = original
        writer.join(timeout=10)
        reader.join(timeout=10)
        assert errors == []

"""End-to-end tests of the trustworthy-server subsystem (PR 8).

The tamper matrix: bit-flipped stores, a generation rollback, and replies
edited in transit are each detected *owner-side* with ``IntegrityError`` —
on both storage engines and both compute backends.  Plus: protocol v3
negotiation (signed replies, resumption tickets), the per-table version CAS
for multi-writer deltas, and the coordinated multi-writer stress run that
pins zero full-view fallbacks.
"""

import shutil
import threading
import traceback
from pathlib import Path

import pytest

from repro.api import (
    DataOwner,
    ErrorCode,
    LoopbackTransport,
    Message,
    ProtocolClient,
    ProtocolServer,
    RemoteOwnerSession,
    TenantRegistry,
)
from repro.api.protocol import SignedReply
from repro.backend import numpy_available
from repro.core.config import F2Config
from repro.exceptions import AuthError, IntegrityError, ProtocolError
from repro.integrity.merkle import MerkleTree, relation_leaves
from repro.integrity.writers import WriteCoordinator
from repro.relational.table import Relation

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])
ENGINES = ["snapshot", "segment"]

SCHEMA = ["City", "Zip", "Side"]
ROWS = [
    ["Hoboken", "07030", "E"],
    ["Hoboken", "07030", "W"],
    ["Jersey", "07302", "E"],
    ["Newark", "07102", "N"],
    ["Hoboken", "07030", "N"],
    ["Jersey", "07302", "W"],
]


def make_owner(seed: int = 7, backend: str | None = None) -> DataOwner:
    return DataOwner.from_seed(seed, config=F2Config(alpha=0.25, seed=3, backend=backend))


def base_relation() -> Relation:
    return Relation(SCHEMA, [list(r) for r in ROWS], name="addresses")


@pytest.fixture
def registry() -> TenantRegistry:
    return TenantRegistry()


def verified_session(server, credential, owner=None, **kwargs) -> RemoteOwnerSession:
    owner = owner or make_owner()
    client = ProtocolClient(LoopbackTransport(server))
    return RemoteOwnerSession(
        owner, client, table_id="orders", credential=credential, verify=True, **kwargs
    )


# ----------------------------------------------------------------------
# The happy path: verification enabled, nothing tampered
# ----------------------------------------------------------------------
class TestVerifiedRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_round_trip_is_byte_identical(self, registry, tmp_path, engine, backend):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(
            tenants=registry, storage_dir=tmp_path, storage_engine=engine,
            backend=backend,
        )
        owner = make_owner(backend=backend)
        session = verified_session(server, credential, owner=owner)
        relation = base_relation()
        session.outsource(relation)
        session.insert_rows([["Summit", "07901", "E"]])

        matches = session.select("City = Hoboken")
        expected = [r for r in ROWS if r[0] == "Hoboken"]
        assert sorted(map(list, matches.rows())) == sorted(expected)
        point = session.query("City", "Jersey")
        assert point.num_rows == 2

    def test_session_verifies_equally_over_both_engines(self, registry, tmp_path):
        # The owner-side expected root is engine-independent: the same
        # pushed view yields the same root whichever way the server stores it.
        credential = registry.mint("acme", "owner")
        roots = []
        for engine in ENGINES:
            server = ProtocolServer(
                tenants=registry, storage_dir=tmp_path / engine, storage_engine=engine
            )
            session = verified_session(server, credential)
            session.outsource(base_relation())
            result = session.client.plan_query(
                "orders", session.owner.plan_query("City = Hoboken").server,
                with_root=True,
            )
            session.integrity.check_reply(result.version, result.merkle_root)
            roots.append(session.integrity.expected_root)
        assert roots[0]  # non-empty

    def test_ack_carries_version_and_root(self, registry):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)
        session = verified_session(server, credential)
        session.outsource(base_relation())
        ack = session.client.last_ack
        assert int(ack.fields["version"]) >= 0
        assert ack.fields["merkle_root"] == session.integrity.expected_root

    def test_env_var_enables_verification(self, registry, monkeypatch):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)
        monkeypatch.setenv("REPRO_VERIFY", "1")
        client = ProtocolClient(LoopbackTransport(server))
        session = RemoteOwnerSession(
            make_owner(), client, table_id="orders", credential=credential
        )
        assert session.verify and session.integrity is not None
        monkeypatch.setenv("REPRO_VERIFY", "0")
        client2 = ProtocolClient(LoopbackTransport(server))
        session2 = RemoteOwnerSession(
            make_owner(), client2, table_id="orders", credential=credential
        )
        assert not session2.verify


# ----------------------------------------------------------------------
# Signed replies
# ----------------------------------------------------------------------
class _EditingTransport:
    """Wraps a transport; can strip or corrupt SignedReply frames."""

    def __init__(self, inner):
        self.inner = inner
        self.mode = None  # None | "strip" | "flip"

    def request(self, data: bytes) -> bytes:
        reply = self.inner.request(data)
        if self.mode is None:
            return reply
        message = Message.decode(reply)
        if not isinstance(message, SignedReply):
            return reply
        if self.mode == "strip":
            return message.payload
        payload = bytearray(message.payload)
        payload[len(payload) // 2] ^= 0x01
        return SignedReply(
            session_id=message.session_id,
            sequence=message.sequence,
            signature=message.signature,
            payload=bytes(payload),
        ).encode("binary")

    def close(self) -> None:
        self.inner.close()


class TestSignedReplies:
    def make_session(self, registry):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)
        transport = _EditingTransport(LoopbackTransport(server))
        client = ProtocolClient(transport)
        owner = make_owner()
        session = RemoteOwnerSession(
            owner, client, table_id="orders", credential=credential, verify=True
        )
        return session, transport

    def test_reply_edited_in_transit_detected(self, registry):
        session, transport = self.make_session(registry)
        session.outsource(base_relation())
        transport.mode = "flip"
        with pytest.raises(IntegrityError, match="signature"):
            session.query("City", "Hoboken")

    def test_stripped_signature_detected(self, registry):
        session, transport = self.make_session(registry)
        session.outsource(base_relation())
        transport.mode = "strip"
        with pytest.raises(IntegrityError, match="signed reply"):
            session.query("City", "Hoboken")

    def test_signature_binds_to_the_request_sequence(self, registry):
        # A recorded (signed) reply replayed for a different request fails
        # verification because the sequence is part of the MAC input.
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)

        recorded = []

        class ReplayTransport:
            def __init__(self, inner):
                self.inner = inner
                self.replay = False

            def request(self, data):
                reply = self.inner.request(data)
                if self.replay and recorded:
                    decoded = Message.decode(recorded[0])
                    if isinstance(decoded, SignedReply):
                        return recorded[0]
                if isinstance(Message.decode(reply), SignedReply):
                    recorded.append(reply)
                return reply

            def close(self):
                self.inner.close()

        transport = ReplayTransport(LoopbackTransport(server))
        client = ProtocolClient(transport)
        owner = make_owner()
        session = RemoteOwnerSession(
            owner, client, table_id="orders", credential=credential, verify=True
        )
        session.outsource(base_relation())
        session.query("City", "Hoboken")  # recorded
        transport.replay = True
        with pytest.raises(IntegrityError):
            session.query("City", "Jersey")


# ----------------------------------------------------------------------
# Session resumption tickets
# ----------------------------------------------------------------------
class TestResumption:
    def test_live_session_resumes_with_sequence_window(self, registry):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)
        client = ProtocolClient(LoopbackTransport(server))
        ack = client.authenticate(credential)
        assert ack.resume_ticket
        session_id = client.session_id
        reply = client.resume()
        assert reply.session_id == session_id
        # The resumed window still accepts signed requests.
        owner = make_owner()
        owner.outsource(base_relation())
        assert client.outsource("orders", owner.server_view()) > 0

    def test_restarted_server_recreates_the_session(self, registry):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)
        client = ProtocolClient(LoopbackTransport(server))
        client.authenticate(credential)
        ticket = client.resume_ticket

        fresh = ProtocolServer(tenants=registry)  # no sessions survive
        reconnect = ProtocolClient(LoopbackTransport(fresh))
        reply = reconnect.resume(ticket, credential=credential)
        # The replay-proof window starts beyond any 32-bit sequence the old
        # incarnation could have consumed.
        assert reply.next_sequence >= (1 << 32)
        owner = make_owner()
        owner.outsource(base_relation())
        assert reconnect.outsource("orders", owner.server_view()) > 0

    def test_rotation_rejects_old_ticket(self, registry):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)
        client = ProtocolClient(LoopbackTransport(server))
        client.authenticate(credential)
        ticket = client.resume_ticket
        rotated = registry.rotate("acme", "owner")

        reconnect = ProtocolClient(LoopbackTransport(server))
        with pytest.raises(AuthError) as excinfo:
            reconnect.resume(ticket, credential=rotated)
        assert excinfo.value.code in (
            ErrorCode.AUTH_FAILED.value,
            ErrorCode.AUTH_REVOKED.value,
        )


# ----------------------------------------------------------------------
# Version CAS
# ----------------------------------------------------------------------
class TestVersionCas:
    def test_stale_base_version_rejected(self, registry):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)
        owner = make_owner()
        session = verified_session(server, credential, owner=owner)
        session.outsource(base_relation())
        stale = session._last_version

        # Another writer moves the table first.
        session.insert_rows([["Summit", "07901", "E"]])
        assert session._last_version > stale

        from repro.api.delta import compute_view_delta

        view = owner.server_view()
        delta = compute_view_delta(view, view)
        with pytest.raises(ProtocolError) as excinfo:
            session.client.insert_delta("orders", delta, base_version=stale)
        assert excinfo.value.code == ErrorCode.VERSION_CONFLICT.value

    def test_unversioned_delta_skips_the_cas(self, registry):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)
        owner = make_owner()
        session = verified_session(server, credential, owner=owner)
        session.outsource(base_relation())

        from repro.api.delta import compute_view_delta

        view = owner.server_view()
        delta = compute_view_delta(view, view)
        # base_version=-1 (the default) must not arm the check.
        count = session.client.insert_delta("orders", delta)
        assert count == view.num_rows


# ----------------------------------------------------------------------
# Tamper matrix: on-disk stores
# ----------------------------------------------------------------------
def populate(registry, tmp_path, engine, backend=None, seed=7):
    """Outsource + one delta insert over a persistent server; returns paths."""
    credential = registry.mint("acme", "owner")
    owner = make_owner(seed=seed, backend=backend)
    server = ProtocolServer(
        tenants=registry, storage_dir=tmp_path, storage_engine=engine, backend=backend
    )
    session = verified_session(server, credential, owner=owner)
    session.outsource(base_relation())
    session.insert_rows([["Summit", "07901", "E"]])
    return credential, owner, session


def reconnect_verified(registry, tmp_path, engine, credential, owner, old_session,
                       backend=None):
    """A fresh server over the same storage + the owner's retained state."""
    server = ProtocolServer(
        tenants=registry, storage_dir=tmp_path, storage_engine=engine, backend=backend
    )
    client = ProtocolClient(LoopbackTransport(server))
    session = RemoteOwnerSession(
        owner, client, table_id="orders", credential=credential, verify=True
    )
    # Carry the owner's verification state across the reconnect (the whole
    # point: the server cannot reset the owner's expectations).
    session.integrity = old_session.integrity
    session._last_view = old_session._last_view
    session._last_version = old_session._last_version
    return session


def flip_byte_of_cell_data(storage: Path, engine: str) -> None:
    """Corrupt stored cell bytes so the table decodes to different rows."""
    if engine == "segment":
        blobs = sorted(storage.glob("*/*.f2s/dict-*.blob")) or sorted(
            storage.glob("*.f2s/dict-*.blob")
        )
        target = blobs[0]
    else:
        snaps = sorted(storage.glob("*/*.f2t")) or sorted(storage.glob("*.f2t"))
        target = snaps[0]
    data = bytearray(target.read_bytes())
    data[len(data) // 2] ^= 0x01
    target.write_bytes(bytes(data))


class TestTamperMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_bit_flipped_store_detected_owner_side(
        self, registry, tmp_path, engine, backend
    ):
        credential, owner, session = populate(registry, tmp_path, engine, backend)
        flip_byte_of_cell_data(tmp_path, engine)
        fresh = reconnect_verified(
            registry, tmp_path, engine, credential, owner, session, backend
        )
        with pytest.raises(IntegrityError) as excinfo:
            fresh.select("City = Hoboken")
        assert "orders" in str(excinfo.value)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_rollback_to_older_generation_detected(self, registry, tmp_path, engine):
        storage = tmp_path / "live"
        storage.mkdir()
        credential = registry.mint("acme", "owner")
        owner = make_owner()
        server = ProtocolServer(
            tenants=registry, storage_dir=storage, storage_engine=engine
        )
        session = verified_session(server, credential, owner=owner)
        session.outsource(base_relation())

        # Snapshot generation A wholesale, then move the table forward.
        frozen = tmp_path / "generation-a"
        shutil.copytree(storage, frozen)
        session.insert_rows([["Summit", "07901", "E"]])

        # The provider "restores a backup": generation A comes back.
        shutil.rmtree(storage)
        shutil.copytree(frozen, storage)
        fresh = reconnect_verified(
            registry, storage, engine, credential, owner, session
        )
        with pytest.raises(IntegrityError) as excinfo:
            fresh.select("City = Hoboken")
        assert "orders" in str(excinfo.value)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_untampered_restart_passes(self, registry, tmp_path, engine):
        credential, owner, session = populate(registry, tmp_path, engine)
        fresh = reconnect_verified(
            registry, tmp_path, engine, credential, owner, session
        )
        matches = fresh.select("City = Hoboken")
        expected = [r for r in ROWS if r[0] == "Hoboken"]
        assert sorted(map(list, matches.rows())) == sorted(expected)


# ----------------------------------------------------------------------
# Coordinated multi-writer stress
# ----------------------------------------------------------------------
class TestMultiWriterStress:
    THREADS = 3
    INSERTS_PER_THREAD = 2

    def test_zero_full_fallbacks_and_root_matches_rebuild(self, registry):
        credential = registry.mint("acme", "owner")
        server = ProtocolServer(tenants=registry)
        owner = make_owner()
        coordinator = WriteCoordinator(table_id="orders")
        boot = verified_session(
            server, credential, owner=owner, coordinator=coordinator
        )
        boot.outsource(base_relation())

        errors: list[str] = []

        def writer(k: int) -> None:
            try:
                session = verified_session(
                    server, credential, owner=owner, coordinator=coordinator
                )
                for i in range(self.INSERTS_PER_THREAD):
                    session.insert_rows([[f"City{k}x{i}", f"{k:02d}{i:03d}", "E"]])
            except Exception:  # pragma: no cover - failure path
                errors.append(traceback.format_exc())

        threads = [
            threading.Thread(target=writer, args=(k,)) for k in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []

        stats = coordinator.stats
        total = self.THREADS * self.INSERTS_PER_THREAD
        assert stats.full_fallbacks == 0
        assert stats.delta_pushes + stats.noop_pushes == total
        assert stats.rebases == stats.cas_conflicts

        # The server's final root equals a from-scratch rebuild over the
        # owner's final view — concurrency lost nothing.
        final_view = owner.server_view()
        expected_root = MerkleTree(relation_leaves(final_view)).root
        check = ProtocolClient(LoopbackTransport(server))
        check.authenticate(credential)
        result = check.query(
            "orders", "City", owner.derive_search_token("City", "Hoboken"),
            with_root=True,
        )
        assert result.merkle_root == expected_root
        assert coordinator.integrity.expected_root == expected_root

"""Tests for FD discovery: the naive oracle, TANE, and their agreement."""

import pytest

from repro.exceptions import DiscoveryError
from repro.fd.discovery import discover_fds_naive
from repro.fd.fd import FunctionalDependency
from repro.fd.tane import tane, tane_with_stats
from repro.fd.verify import fd_holds, fd_preservation_report, fds_equivalent, violating_row_pairs
from repro.relational.table import Relation

from tests.conftest import make_random_table


@pytest.fixture
def chain_table() -> Relation:
    """Zipcode -> City -> State chain with a free Street column."""
    rows = [
        ["07030", "Hoboken", "NJ", "s1"],
        ["07030", "Hoboken", "NJ", "s2"],
        ["07302", "JerseyCity", "NJ", "s3"],
        ["07302", "JerseyCity", "NJ", "s4"],
        ["10001", "NewYork", "NY", "s5"],
        ["10001", "NewYork", "NY", "s6"],
    ]
    return Relation(["Zip", "City", "State", "Street"], rows)


class TestNaiveDiscovery:
    def test_finds_planted_chain(self, chain_table):
        fds = discover_fds_naive(chain_table)
        assert fds.implies(FunctionalDependency(["Zip"], "City"))
        assert fds.implies(FunctionalDependency(["Zip"], "State"))
        assert fds.implies(FunctionalDependency(["City"], "State"))

    def test_does_not_report_absent_fd(self, chain_table):
        fds = discover_fds_naive(chain_table)
        assert not fds.implies(FunctionalDependency(["State"], "City"))

    def test_minimal_only_suppresses_supersets(self, chain_table):
        fds = discover_fds_naive(chain_table)
        assert FunctionalDependency(["Zip", "City"], "State") not in fds

    def test_max_lhs_size_limits_search(self, chain_table):
        fds = discover_fds_naive(chain_table, max_lhs_size=1)
        assert all(len(fd.lhs) == 1 for fd in fds)

    def test_empty_relation_raises(self):
        with pytest.raises(DiscoveryError):
            discover_fds_naive(Relation(["A"]))


class TestTane:
    def test_matches_naive_on_chain(self, chain_table):
        assert fds_equivalent(tane(chain_table), discover_fds_naive(chain_table))

    def test_matches_naive_on_figure1(self, paper_figure1_table):
        assert fds_equivalent(
            tane(paper_figure1_table), discover_fds_naive(paper_figure1_table)
        )

    def test_matches_naive_on_figure3(self, paper_figure3_table):
        assert fds_equivalent(
            tane(paper_figure3_table), discover_fds_naive(paper_figure3_table)
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_naive_on_random_tables(self, seed):
        table = make_random_table(seed)
        assert fds_equivalent(tane(table), discover_fds_naive(table))

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_naive_on_wider_tables(self, seed):
        table = make_random_table(seed + 100, num_attributes=5)
        assert fds_equivalent(tane(table), discover_fds_naive(table))

    def test_emits_minimal_dependencies_only(self, chain_table):
        fds = tane(chain_table)
        for fd in fds:
            for other in fds:
                if fd != other and fd.rhs == other.rhs:
                    assert not set(other.lhs) < set(fd.lhs)

    def test_unique_column_determines_everything(self):
        table = Relation(["K", "A"], [["k1", "a1"], ["k2", "a1"], ["k3", "a2"]])
        fds = tane(table)
        assert fds.implies(FunctionalDependency(["K"], "A"))

    def test_stats_counters(self, chain_table):
        result = tane_with_stats(chain_table)
        assert result.elapsed_seconds >= 0
        assert result.levels_processed >= 1
        assert result.candidates_examined > 0
        assert result.partitions_computed >= chain_table.num_attributes

    def test_max_lhs_size_cap(self, chain_table):
        fds = tane(chain_table, max_lhs_size=1)
        assert all(len(fd.lhs) <= 1 for fd in fds)

    def test_empty_relation_raises(self):
        with pytest.raises(DiscoveryError):
            tane(Relation(["A"]))

    def test_no_fds_on_all_unique_independent_columns(self):
        table = Relation(
            ["A", "B"],
            [["a1", "b1"], ["a1", "b2"], ["a2", "b1"], ["a2", "b2"]],
        )
        assert len(tane(table)) == 0


class TestVerifyHelpers:
    def test_fd_holds(self, chain_table):
        assert fd_holds(chain_table, FunctionalDependency(["Zip"], "City"))
        assert not fd_holds(chain_table, FunctionalDependency(["State"], "Zip"))

    def test_violating_row_pairs_empty_for_valid_fd(self, chain_table):
        assert violating_row_pairs(chain_table, FunctionalDependency(["Zip"], "City")) == []

    def test_violating_row_pairs_found_for_invalid_fd(self, chain_table):
        pairs = violating_row_pairs(chain_table, FunctionalDependency(["State"], "City"))
        assert pairs
        for first, second in pairs:
            assert chain_table.value(first, "State") == chain_table.value(second, "State")
            assert chain_table.value(first, "City") != chain_table.value(second, "City")

    def test_violating_row_pairs_respects_limit(self, chain_table):
        pairs = violating_row_pairs(chain_table, FunctionalDependency(["State"], "City"), limit=1)
        assert len(pairs) == 1

    def test_preservation_report_identical_tables(self, chain_table):
        report = fd_preservation_report(chain_table, chain_table.copy())
        assert report["preserved"]
        assert report["lost"] == [] and report["introduced"] == []

    def test_preservation_report_detects_differences(self, chain_table):
        broken = chain_table.copy()
        broken.set_value(0, "City", "Weehawken")  # breaks Zip -> City
        report = fd_preservation_report(chain_table, broken)
        assert not report["preserved"]
        assert report["lost"]

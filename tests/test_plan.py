"""Tests for the symbolic cell/row plan primitives."""

from repro.core.plan import (
    FreshCell,
    FreshValueFactory,
    InstanceCell,
    RandomCell,
    RowPlan,
    RowProvenanceSpec,
)
from repro.crypto.probabilistic import Ciphertext


class TestCellSpecs:
    def test_instance_cell_cache_key(self):
        cell = InstanceCell(value="a1", variant="mas0|ecg1|inst0")
        assert cell.cache_key() == ("instance", "a1", "mas0|ecg1|inst0")

    def test_cell_specs_are_hashable_values(self):
        assert InstanceCell("a", "v") == InstanceCell("a", "v")
        assert RandomCell("a") == RandomCell("a")
        assert FreshCell("t1") != FreshCell("t2")

    def test_row_plan_replace_cell(self):
        plan = RowPlan(
            cells={"A": RandomCell("x")},
            provenance=RowProvenanceSpec(kind="original", source_row=0),
        )
        plan.replace_cell("A", FreshCell("tok"))
        assert plan.cells["A"] == FreshCell("tok")


class TestFreshValueFactory:
    def test_tokens_are_unique(self):
        factory = FreshValueFactory(seed=0)
        tokens = {factory.new_token("x") for _ in range(100)}
        assert len(tokens) == 100
        assert factory.tokens_issued == 100

    def test_same_token_materializes_to_same_value(self):
        factory = FreshValueFactory(seed=0)
        token = factory.new_token()
        assert factory.materialize(token) == factory.materialize(token)

    def test_different_tokens_materialize_to_different_values(self):
        factory = FreshValueFactory(seed=0)
        first = factory.materialize(factory.new_token())
        second = factory.materialize(factory.new_token())
        assert first != second

    def test_materialized_values_look_like_ciphertexts(self):
        factory = FreshValueFactory(seed=0, nonce_length=16)
        value = factory.materialize(factory.new_token())
        assert isinstance(value, Ciphertext)
        assert len(value.nonce) == 16

    def test_seeded_factories_are_reproducible(self):
        first = FreshValueFactory(seed=5)
        second = FreshValueFactory(seed=5)
        assert first.materialize("token") == second.materialize("token")

    def test_fresh_cell_helper(self):
        factory = FreshValueFactory(seed=0)
        cell = factory.fresh_cell("label")
        assert isinstance(cell, FreshCell)
        assert cell.token.startswith("label#")

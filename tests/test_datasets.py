"""Tests for the evaluation-dataset generators (Table 1 substitutes)."""

import pytest

from repro.datasets.synthetic import (
    SYNTHETIC_MAS_ONE,
    SYNTHETIC_MAS_TWO,
    SyntheticProfile,
    generate_fd_table,
    generate_synthetic,
)
from repro.datasets.tpch import (
    CUSTOMER_MAS_ONE,
    CUSTOMER_MAS_TWO,
    CUSTOMER_SCHEMA,
    generate_customer,
    generate_orders,
)
from repro.exceptions import DatasetError
from repro.fd.fd import FunctionalDependency
from repro.fd.mas import find_maximal_attribute_sets
from repro.fd.verify import fd_holds


class TestOrdersGenerator:
    def test_shape(self):
        orders = generate_orders(200, seed=1)
        assert orders.num_rows == 200
        assert orders.num_attributes == 9

    def test_deterministic_per_seed(self):
        assert list(generate_orders(50, seed=3).rows()) == list(generate_orders(50, seed=3).rows())
        assert list(generate_orders(50, seed=3).rows()) != list(generate_orders(50, seed=4).rows())

    def test_order_keys_unique(self):
        orders = generate_orders(300, seed=0)
        assert len(orders.distinct_values("OrderKey")) == 300
        assert len(orders.distinct_values("Comment")) == 300

    def test_low_cardinality_attributes(self):
        orders = generate_orders(500, seed=0)
        domains = orders.domain_sizes()
        assert domains["OrderStatus"] <= 3
        assert domains["OrderPriority"] <= 5
        assert domains["ShipPriority"] <= 6
        assert domains["Clerk"] < 500

    def test_has_at_least_one_mas_with_low_cardinality_attributes(self):
        orders = generate_orders(400, seed=0)
        masses = find_maximal_attribute_sets(orders)
        assert masses
        union = set().union(*(mas.as_set for mas in masses))
        assert "OrderStatus" in union

    def test_invalid_size_rejected(self):
        with pytest.raises(DatasetError):
            generate_orders(0)


class TestCustomerGenerator:
    def test_shape(self):
        customer = generate_customer(150, seed=2)
        assert customer.num_rows == 150
        assert customer.num_attributes == 21
        assert customer.attributes == tuple(CUSTOMER_SCHEMA)

    def test_deterministic_per_seed(self):
        assert list(generate_customer(60, seed=1).rows()) == list(
            generate_customer(60, seed=1).rows()
        )

    def test_planted_mas_structure(self):
        customer = generate_customer(400, seed=0)
        masses = {mas.as_set for mas in find_maximal_attribute_sets(customer)}
        assert frozenset(CUSTOMER_MAS_ONE) in masses
        assert frozenset(CUSTOMER_MAS_TWO) in masses
        # No MAS may span beyond the two planted ones.
        for mas in masses:
            assert mas <= frozenset(CUSTOMER_MAS_ONE) or mas <= frozenset(CUSTOMER_MAS_TWO)

    def test_high_cardinality_identifiers_are_unique(self):
        customer = generate_customer(250, seed=0)
        for attribute in ("C_Id", "C_Phone", "C_Data", "C_Balance"):
            assert len(customer.distinct_values(attribute)) == 250

    def test_planted_mas_overlap(self):
        assert set(CUSTOMER_MAS_ONE) & set(CUSTOMER_MAS_TWO)

    def test_invalid_size_rejected(self):
        with pytest.raises(DatasetError):
            generate_customer(0)


class TestSyntheticGenerator:
    def test_shape(self):
        table = generate_synthetic(500, seed=1)
        assert table.num_rows == 500
        assert table.num_attributes == 7

    def test_deterministic_per_seed(self):
        assert list(generate_synthetic(100, seed=7).rows()) == list(
            generate_synthetic(100, seed=7).rows()
        )

    def test_planted_mas_structure(self):
        table = generate_synthetic(600, seed=0)
        masses = {mas.as_set for mas in find_maximal_attribute_sets(table)}
        assert frozenset(SYNTHETIC_MAS_ONE) in masses
        assert frozenset(SYNTHETIC_MAS_TWO) in masses
        for mas in masses:
            assert mas <= frozenset(SYNTHETIC_MAS_ONE) or mas <= frozenset(SYNTHETIC_MAS_TWO)

    def test_planted_fds_hold(self):
        table = generate_synthetic(600, seed=0)
        assert fd_holds(table, FunctionalDependency(["A1"], "A2"))
        assert fd_holds(table, FunctionalDependency(["A4"], "A5"))

    def test_reverse_fds_broken(self):
        table = generate_synthetic(600, seed=0)
        assert not fd_holds(table, FunctionalDependency(["A2"], "A1"))
        assert not fd_holds(table, FunctionalDependency(["A5"], "A4"))

    def test_many_small_equivalence_classes(self):
        table = generate_synthetic(600, seed=0)
        frequencies = table.value_frequencies(SYNTHETIC_MAS_ONE)
        assert max(frequencies.values()) <= 4
        assert len(frequencies) > 300

    def test_profile_validation(self):
        with pytest.raises(DatasetError):
            generate_synthetic(100, profile=SyntheticProfile(duplicate_fraction=2.0))
        with pytest.raises(DatasetError):
            generate_synthetic(100, profile=SyntheticProfile(min_class_size=1))
        with pytest.raises(DatasetError):
            generate_synthetic(2)


class TestFdTableGenerator:
    def test_planted_chain_holds(self):
        table = generate_fd_table(200, num_zipcodes=8, seed=0)
        assert fd_holds(table, FunctionalDependency(["Zipcode"], "City"))
        assert fd_holds(table, FunctionalDependency(["City"], "State"))

    def test_extra_columns(self):
        table = generate_fd_table(50, num_extra_columns=3)
        assert table.num_attributes == 4 + 3

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            generate_fd_table(0)
        with pytest.raises(DatasetError):
            generate_fd_table(10, num_zipcodes=0)

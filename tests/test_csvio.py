"""Unit tests for CSV import/export."""

import io

import pytest

from repro.exceptions import RelationError
from repro.relational.csvio import read_csv, write_csv
from repro.relational.table import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation(["A", "B"], [["x", "1"], ["y", "2"]], name="csv-test")


class TestRoundTrip:
    def test_roundtrip_via_path(self, relation, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(relation, path)
        loaded = read_csv(path)
        assert loaded.attributes == relation.attributes
        assert list(loaded.rows()) == list(relation.rows())

    def test_roundtrip_via_handles(self, relation):
        buffer = io.StringIO()
        write_csv(relation, buffer)
        buffer.seek(0)
        loaded = read_csv(buffer)
        assert list(loaded.rows()) == list(relation.rows())

    def test_name_defaults_to_stem(self, relation, tmp_path):
        path = tmp_path / "orders_table.csv"
        write_csv(relation, path)
        assert read_csv(path).name == "orders_table"

    def test_explicit_name(self, relation, tmp_path):
        path = tmp_path / "x.csv"
        write_csv(relation, path)
        assert read_csv(path, name="custom").name == "custom"

    def test_write_creates_parent_directories(self, relation, tmp_path):
        path = tmp_path / "nested" / "deeper" / "table.csv"
        write_csv(relation, path)
        assert path.exists()


class TestErrorHandling:
    def test_empty_file_raises(self):
        with pytest.raises(RelationError):
            read_csv(io.StringIO(""))

    def test_ragged_row_raises(self):
        with pytest.raises(RelationError):
            read_csv(io.StringIO("A,B\n1,2\n3\n"))

    def test_blank_lines_are_skipped(self):
        loaded = read_csv(io.StringIO("A,B\n1,2\n\n3,4\n"))
        assert loaded.num_rows == 2

    def test_header_whitespace_stripped(self):
        loaded = read_csv(io.StringIO(" A , B \n1,2\n"))
        assert loaded.attributes == ("A", "B")

    def test_values_with_commas_survive_roundtrip(self, tmp_path):
        relation = Relation(["A"], [["hello, world"]])
        path = tmp_path / "quoted.csv"
        write_csv(relation, path)
        assert read_csv(path).value(0, "A") == "hello, world"

"""Tests for the f2-repro command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.fd import tane
from repro.fd.verify import fds_equivalent
from repro.relational.csvio import read_csv, write_csv
from repro.datasets import generate_fd_table


@pytest.fixture
def plaintext_csv(tmp_path):
    path = tmp_path / "addresses.csv"
    write_csv(generate_fd_table(60, num_zipcodes=6, seed=1), path)
    return path


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("encrypt", "discover", "attack", "bench", "dataset"):
            args = {
                "encrypt": ["encrypt", "in.csv", "out.csv"],
                "discover": ["discover", "in.csv"],
                "attack": ["attack"],
                "bench": ["bench", "table1"],
                "dataset": ["dataset", "orders", "out.csv"],
            }[command]
            assert parser.parse_args(args).command == command

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEncryptCommand:
    def test_encrypt_writes_ciphertext_and_summary(self, plaintext_csv, tmp_path, capsys):
        output = tmp_path / "encrypted.csv"
        summary = tmp_path / "summary.json"
        exit_code = main(
            [
                "encrypt",
                str(plaintext_csv),
                str(output),
                "--alpha",
                "0.5",
                "--key-seed",
                "7",
                "--summary",
                str(summary),
            ]
        )
        assert exit_code == 0
        assert output.exists()
        description = json.loads(summary.read_text())
        assert description["original_rows"] == 60
        printed = json.loads(capsys.readouterr().out)
        assert printed["original_rows"] == 60

    def test_encrypted_output_preserves_fds(self, plaintext_csv, tmp_path, capsys):
        output = tmp_path / "encrypted.csv"
        main(["encrypt", str(plaintext_csv), str(output), "--alpha", "0.5", "--key-seed", "3"])
        capsys.readouterr()
        plaintext = read_csv(plaintext_csv)
        ciphertext = read_csv(output)
        assert fds_equivalent(tane(plaintext, max_lhs_size=2), tane(ciphertext, max_lhs_size=2))


class TestDiscoverCommand:
    def test_discover_prints_fds(self, plaintext_csv, capsys):
        exit_code = main(["discover", str(plaintext_csv), "--max-lhs", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "->" in output
        assert "Zipcode" in output


class TestDatasetCommand:
    @pytest.mark.parametrize("name,attributes", [("orders", 9), ("customer", 21), ("synthetic", 7)])
    def test_dataset_generation(self, tmp_path, capsys, name, attributes):
        output = tmp_path / f"{name}.csv"
        exit_code = main(["dataset", name, str(output), "--rows", "40"])
        assert exit_code == 0
        relation = read_csv(output)
        assert relation.num_rows == 40
        assert relation.num_attributes == attributes
        assert "wrote 40 rows" in capsys.readouterr().out


class TestAttackCommand:
    def test_attack_prints_table(self, capsys):
        exit_code = main(["attack", "--dataset", "orders", "--rows", "120", "--trials", "60"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "deterministic" in output
        assert "f2" in output

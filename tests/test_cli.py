"""Tests for the f2-repro command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.fd import tane
from repro.fd.verify import fds_equivalent
from repro.relational.csvio import read_csv, write_csv
from repro.datasets import generate_fd_table


@pytest.fixture
def plaintext_csv(tmp_path):
    path = tmp_path / "addresses.csv"
    write_csv(generate_fd_table(60, num_zipcodes=6, seed=1), path)
    return path


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in (
            "encrypt", "insert", "discover", "serve", "query", "attack", "bench", "dataset",
        ):
            args = {
                "encrypt": ["encrypt", "in.csv", "out.csv"],
                "insert": ["insert", "in.csv", "batch.csv", "out.csv"],
                "discover": ["discover", "in.csv"],
                "serve": ["serve", "--port", "0"],
                "query": ["query", "in.csv", "City", "Hoboken", "--key-seed", "7"],
                "attack": ["attack"],
                "bench": ["bench", "table1"],
                "dataset": ["dataset", "orders", "out.csv"],
            }[command]
            assert parser.parse_args(args).command == command

    def test_query_requires_key_seed(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "in.csv", "City", "Hoboken"])

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestEncryptCommand:
    def test_encrypt_writes_ciphertext_and_summary(self, plaintext_csv, tmp_path, capsys):
        output = tmp_path / "encrypted.csv"
        summary = tmp_path / "summary.json"
        exit_code = main(
            [
                "encrypt",
                str(plaintext_csv),
                str(output),
                "--alpha",
                "0.5",
                "--key-seed",
                "7",
                "--summary",
                str(summary),
            ]
        )
        assert exit_code == 0
        assert output.exists()
        description = json.loads(summary.read_text())
        assert description["original_rows"] == 60
        printed = json.loads(capsys.readouterr().out)
        assert printed["original_rows"] == 60

    def test_encrypted_output_preserves_fds(self, plaintext_csv, tmp_path, capsys):
        output = tmp_path / "encrypted.csv"
        main(["encrypt", str(plaintext_csv), str(output), "--alpha", "0.5", "--key-seed", "3"])
        capsys.readouterr()
        plaintext = read_csv(plaintext_csv)
        ciphertext = read_csv(output)
        assert fds_equivalent(tane(plaintext, max_lhs_size=2), tane(ciphertext, max_lhs_size=2))


class TestInsertCommand:
    def test_insert_appends_batch_incrementally(self, plaintext_csv, tmp_path, capsys):
        base = read_csv(plaintext_csv)
        batch_path = tmp_path / "batch.csv"
        batch = base.select_rows(range(5), name="batch")
        # Fresh street/extra values keep the batch from duplicating full rows.
        for index in range(batch.num_rows):
            batch.set_value(index, "Street", f"NewStreet-{index}")
            for attr in batch.attributes:
                if attr.startswith("Extra"):
                    batch.set_value(index, attr, f"new-{attr}-{index}")
        write_csv(batch, batch_path)
        output = tmp_path / "updated.csv"
        exit_code = main(
            [
                "insert",
                str(plaintext_csv),
                str(batch_path),
                str(output),
                "--alpha",
                "0.5",
                "--key-seed",
                "7",
            ]
        )
        assert exit_code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["original_rows"] == base.num_rows + batch.num_rows
        assert printed["update"]["mode"] in {"incremental", "full"}
        full_plain = base.copy()
        full_plain.extend(batch.rows())
        ciphertext = read_csv(output)
        assert fds_equivalent(
            tane(full_plain, max_lhs_size=2), tane(ciphertext, max_lhs_size=2)
        )

    def test_insert_rejects_mismatched_schema(self, plaintext_csv, tmp_path, capsys):
        from repro.relational.table import Relation

        batch_path = tmp_path / "bad.csv"
        write_csv(Relation(["X", "Y"], [["1", "2"]]), batch_path)
        exit_code = main(
            ["insert", str(plaintext_csv), str(batch_path), str(tmp_path / "out.csv")]
        )
        assert exit_code == 2
        assert "does not match" in capsys.readouterr().err


class TestDiscoverCommand:
    def test_discover_prints_fds(self, plaintext_csv, capsys):
        exit_code = main(["discover", str(plaintext_csv), "--max-lhs", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "->" in output
        assert "Zipcode" in output


class TestDatasetCommand:
    @pytest.mark.parametrize("name,attributes", [("orders", 9), ("customer", 21), ("synthetic", 7)])
    def test_dataset_generation(self, tmp_path, capsys, name, attributes):
        output = tmp_path / f"{name}.csv"
        exit_code = main(["dataset", name, str(output), "--rows", "40"])
        assert exit_code == 0
        relation = read_csv(output)
        assert relation.num_rows == 40
        assert relation.num_attributes == attributes
        assert "wrote 40 rows" in capsys.readouterr().out


class TestServeAndQueryCommands:
    @pytest.fixture
    def served_port(self, tmp_path):
        """A protocol server on a free port (what `f2-repro serve` runs)."""
        from repro.api.protocol import ProtocolServer, SocketProtocolServer

        server = SocketProtocolServer(
            ProtocolServer(storage_dir=tmp_path / "store"), port=0
        )
        server.serve_in_background()
        yield server.port
        server.shutdown()

    def test_query_roundtrip_against_server(self, plaintext_csv, served_port, capsys):
        plaintext = read_csv(plaintext_csv)
        zipcode = plaintext.value(0, "Zipcode")
        expected = [
            row
            for row in plaintext.rows()
            if row[plaintext.schema.index_of("Zipcode")] == zipcode
        ]
        exit_code = main(
            [
                "query",
                str(plaintext_csv),
                "Zipcode",
                zipcode,
                "--key-seed", "7",
                "--alpha", "0.5",
                "--port", str(served_port),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert f"# {len(expected)} matching rows" in captured.err
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) == len(expected) + 1  # header + matches
        assert all(zipcode in line for line in lines[1:])

    def test_query_expression_form(self, plaintext_csv, served_port, capsys):
        from repro.query import evaluate_predicate, parse_predicate

        plaintext = read_csv(plaintext_csv)
        zipcode = plaintext.value(0, "Zipcode")
        other = plaintext.value(1, "Zipcode")
        expression = f"Zipcode in ({zipcode}, {other}) and City != no-such-city"
        expected = evaluate_predicate(plaintext, parse_predicate(expression))
        exit_code = main(
            [
                "query", str(plaintext_csv), expression,
                "--key-seed", "7", "--alpha", "0.5", "--port", str(served_port),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert f"# {len(expected)} matching rows" in captured.err
        assert "leakage:" in captured.err
        assert "homogenised=True" in captured.err
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) == len(expected) + 1  # header + matches

    def test_query_explain_prints_plan_without_server(self, plaintext_csv, capsys):
        # --explain needs no running server (note the unused port 1).
        exit_code = main(
            [
                "query", str(plaintext_csv),
                "Zipcode = 07030 and Street = nowhere",
                "--key-seed", "7", "--alpha", "0.5", "--port", "1", "--explain",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mode:" in output
        assert "server" in output

    def test_query_malformed_expression_is_usage_error(self, plaintext_csv, capsys):
        exit_code = main(
            [
                "query", str(plaintext_csv), "Zipcode = ",
                "--key-seed", "7", "--port", "1",
            ]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_query_three_positionals_is_usage_error(self, plaintext_csv, capsys):
        exit_code = main(
            [
                "query", str(plaintext_csv), "Zipcode", "=", "07030",
                "--key-seed", "7", "--port", "1",
            ]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_query_no_push_uses_existing_snapshot(self, plaintext_csv, served_port, capsys):
        # First query pushes (and the server snapshots); the second run asks
        # the same seeded owner to query without re-shipping the table.
        args = [
            "query", str(plaintext_csv), "City", "city-1",
            "--key-seed", "7", "--alpha", "0.5", "--port", str(served_port),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args + ["--no-push"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_query_unknown_attribute_errors(self, plaintext_csv, served_port, capsys):
        exit_code = main(
            [
                "query", str(plaintext_csv), "Nope", "x",
                "--key-seed", "7", "--port", str(served_port),
            ]
        )
        assert exit_code == 2
        assert "not in" in capsys.readouterr().err

    def test_serve_skips_corrupt_snapshot_instead_of_failing(self, tmp_path):
        # PR 5 semantics: one corrupt/truncated .f2t warns and is skipped —
        # the server `serve` constructs still starts and serves every other
        # table (the full reload regression lives in test_protocol.py).
        from repro.api.protocol import ProtocolServer

        store = tmp_path / "store"
        store.mkdir()
        (store / "default.f2t").write_bytes(b"F2WB garbage not a frame")
        with pytest.warns(RuntimeWarning, match="corrupt snapshot"):
            server = ProtocolServer(storage_dir=store)
        assert server.table_ids() == []

    def test_query_without_server_reports_protocol_error(self, plaintext_csv, capsys):
        exit_code = main(
            [
                "query", str(plaintext_csv), "Zipcode", "zip",
                "--key-seed", "7", "--port", "1", "--alpha", "0.5",
            ]
        )
        assert exit_code == 3
        assert "error:" in capsys.readouterr().err


class TestAdminAndTenantedServe:
    @pytest.fixture
    def registry_path(self, tmp_path):
        return tmp_path / "tenants.json"

    def test_admin_mint_list_rotate_revoke(self, registry_path, capsys):
        assert main(["admin", "--tenants", str(registry_path), "mint", "acme"]) == 0
        token = capsys.readouterr().out.strip()
        assert token.startswith("f2tok1.acme.owner.")

        assert main(["admin", "--tenants", str(registry_path), "list"]) == 0
        listing = capsys.readouterr().out
        assert "acme\towner" in listing
        assert token.rsplit(".", 1)[1] not in listing  # secrets never listed

        assert main(["admin", "--tenants", str(registry_path), "rotate", "acme"]) == 0
        rotated = capsys.readouterr().out.strip()
        assert rotated != token

        assert main(["admin", "--tenants", str(registry_path), "revoke", "acme"]) == 0
        assert "revoked 1 key" in capsys.readouterr().out

    def test_admin_revoke_unknown_tenant_exits_4(self, registry_path, capsys):
        main(["admin", "--tenants", str(registry_path), "mint", "acme"])
        capsys.readouterr()
        exit_code = main(["admin", "--tenants", str(registry_path), "revoke", "ghost"])
        assert exit_code == 4
        assert "error-code: AUTH_UNKNOWN_TENANT" in capsys.readouterr().err

    @pytest.fixture
    def tenanted_port(self, registry_path, tmp_path, capsys):
        """A tenant-auth-required server plus minted owner/analyst tokens."""
        from repro.api.auth import TenantRegistry
        from repro.api.protocol import ProtocolServer, SocketProtocolServer

        main(["admin", "--tenants", str(registry_path), "mint", "acme"])
        owner_token = capsys.readouterr().out.strip()
        main(
            ["admin", "--tenants", str(registry_path), "mint", "acme",
             "--capability", "analyst"]
        )
        analyst_token = capsys.readouterr().out.strip()
        server = SocketProtocolServer(
            ProtocolServer(tenants=TenantRegistry(registry_path)), port=0
        )
        server.serve_in_background()
        yield server.port, owner_token, analyst_token
        server.shutdown()

    def test_exit_codes_by_error_class(self, plaintext_csv, tenanted_port, capsys):
        port, owner_token, analyst_token = tenanted_port
        base = [
            "query", str(plaintext_csv), "City", "city-1",
            "--key-seed", "7", "--alpha", "0.5", "--port", str(port),
        ]
        # Unauthenticated against a tenanted server: exit 4 (AUTH_REQUIRED).
        assert main(base) == 4
        assert "error-code: AUTH_REQUIRED" in capsys.readouterr().err
        # A forged secret: exit 4 (AUTH_FAILED on the first signed frame).
        forged = owner_token.rsplit(".", 1)[0] + "." + "ab" * 32
        assert main(base + ["--token", forged]) == 4
        assert "error-code: AUTH_FAILED" in capsys.readouterr().err
        # An analyst pushing the table: exit 5 (FORBIDDEN).
        assert main(base + ["--token", analyst_token]) == 5
        assert "error-code: FORBIDDEN" in capsys.readouterr().err
        # The owner token works end to end (and snapshots nothing locally).
        assert main(base + ["--token", owner_token]) == 0
        captured = capsys.readouterr()
        assert "matching rows" in captured.err
        # The analyst can then query without pushing.
        assert main(base + ["--token", analyst_token, "--no-push"]) == 0
        assert "matching rows" in capsys.readouterr().err

    def test_missing_token_file_is_clean_usage_error(self, plaintext_csv, capsys):
        exit_code = main(
            [
                "query", str(plaintext_csv), "City", "city-1",
                "--key-seed", "7", "--port", "1",
                "--token", "@/nonexistent/owner.tok",
            ]
        )
        assert exit_code == 2
        assert "cannot read token file" in capsys.readouterr().err

    def test_token_from_file(self, plaintext_csv, tenanted_port, tmp_path, capsys):
        port, owner_token, _ = tenanted_port
        token_file = tmp_path / "owner.tok"
        token_file.write_text(owner_token + "\n", encoding="utf-8")
        exit_code = main(
            [
                "query", str(plaintext_csv), "City", "city-1",
                "--key-seed", "7", "--alpha", "0.5", "--port", str(port),
                "--token", f"@{token_file}",
            ]
        )
        assert exit_code == 0
        assert "matching rows" in capsys.readouterr().err


class TestAttackCommand:
    def test_attack_prints_table(self, capsys):
        exit_code = main(["attack", "--dataset", "orders", "--rows", "120", "--trials", "60"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "deterministic" in output
        assert "f2" in output


class TestVerifyCommand:
    @pytest.fixture
    def populated_storage(self, tmp_path):
        """A storage dir holding one table per engine flavour."""
        from repro.api.protocol import LoopbackTransport, ProtocolClient, ProtocolServer
        from repro.api.session import DataOwner
        from repro.core.config import F2Config

        owner = DataOwner.from_seed(5, config=F2Config(alpha=0.5, seed=2))
        owner.outsource(read_csv(self.plaintext(tmp_path)))
        dirs = {}
        for engine in ("snapshot", "segment"):
            storage = tmp_path / f"stor-{engine}"
            server = ProtocolServer(storage_dir=storage, storage_engine=engine)
            ProtocolClient(LoopbackTransport(server)).outsource(
                "orders", owner.server_view()
            )
            dirs[engine] = storage
        return dirs

    @staticmethod
    def plaintext(tmp_path):
        path = tmp_path / "plain.csv"
        write_csv(generate_fd_table(40, num_zipcodes=4, seed=1), path)
        return path

    @pytest.mark.parametrize("engine", ["snapshot", "segment"])
    def test_verify_passes_on_clean_store(self, populated_storage, engine, capsys):
        exit_code = main(["verify", "--storage", str(populated_storage[engine])])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "all good" in out and "orders" in out

    def test_verify_restricts_to_one_table(self, populated_storage, capsys):
        storage = populated_storage["snapshot"]
        assert main(["verify", "--storage", str(storage), "--table", "orders"]) == 0
        assert main(["verify", "--storage", str(storage), "--table", "ghost"]) == 0
        assert "no tables" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["snapshot", "segment"])
    def test_verify_exits_7_on_tampered_store(self, populated_storage, engine, capsys):
        storage = populated_storage[engine]
        pattern = "orders.f2s/seg-*.seg" if engine == "segment" else "orders.f2t"
        target = sorted(storage.glob(pattern))[0]
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0x01
        target.write_bytes(bytes(data))

        exit_code = main(["verify", "--storage", str(storage)])
        assert exit_code == 7
        err = capsys.readouterr().err
        assert "INTEGRITY_VIOLATION" in err and "FAIL" in err

    def test_verify_missing_directory_is_a_store_error(self, tmp_path, capsys):
        exit_code = main(["verify", "--storage", str(tmp_path / "nope")])
        assert exit_code == 3
        assert "does not exist" in capsys.readouterr().err

    def test_serve_verify_on_start_refuses_tampered_storage(
        self, populated_storage, capsys
    ):
        storage = populated_storage["segment"]
        target = sorted(storage.glob("orders.f2s/seg-*.seg"))[0]
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0x01
        target.write_bytes(bytes(data))

        exit_code = main(
            [
                "serve", "--port", "0", "--storage", str(storage),
                "--storage-engine", "segment", "--verify-on-start",
            ]
        )
        assert exit_code == 7
        assert "refusing to serve" in capsys.readouterr().err

    def test_serve_verify_on_start_requires_storage(self, capsys):
        exit_code = main(["serve", "--port", "0", "--verify-on-start"])
        assert exit_code == 2
        assert "--verify-on-start requires --storage" in capsys.readouterr().err

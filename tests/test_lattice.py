"""Tests for the FD lattice of Section 3.4 (Figure 5)."""

import pytest

from repro.core.lattice import LatticeNode, top_level_nodes, walk_lattice


class TestLatticeNode:
    def test_level(self):
        node = LatticeNode(lhs=frozenset({"A", "B"}), rhs="C")
        assert node.level == 2

    def test_children_shrink_lhs_keep_rhs(self):
        node = LatticeNode(lhs=frozenset({"A", "B"}), rhs="C")
        children = list(node.children())
        assert {child.rhs for child in children} == {"C"}
        assert sorted(sorted(child.lhs) for child in children) == [["A"], ["B"]]

    def test_leaf_has_no_children(self):
        node = LatticeNode(lhs=frozenset({"A"}), rhs="B")
        assert list(node.children()) == []

    def test_covers_subset_same_rhs(self):
        parent = LatticeNode(lhs=frozenset({"A", "B"}), rhs="C")
        child = LatticeNode(lhs=frozenset({"A"}), rhs="C")
        other_rhs = LatticeNode(lhs=frozenset({"A"}), rhs="D")
        assert parent.covers(child)
        assert parent.covers(parent)
        assert not parent.covers(other_rhs)
        assert not child.covers(parent)

    def test_str(self):
        node = LatticeNode(lhs=frozenset({"B", "A"}), rhs="C")
        assert str(node) == "{A, B}:C"


class TestTopLevelNodes:
    def test_counts(self):
        nodes = top_level_nodes(("A", "B", "C"))
        assert len(nodes) == 3
        for node in nodes:
            assert node.level == 2
            assert node.rhs not in node.lhs

    def test_single_attribute_mas_has_no_nodes(self):
        assert top_level_nodes(("A",)) == []

    def test_figure5_example(self):
        """Figure 5: the lattice of MAS {A, B, C} has AB:C, AC:B, BC:A on top."""
        nodes = {str(node) for node in top_level_nodes(("A", "B", "C"))}
        assert nodes == {"{A, B}:C", "{A, C}:B", "{B, C}:A"}


class TestWalkLattice:
    def test_walk_visits_every_candidate_once(self):
        nodes = list(walk_lattice(("A", "B", "C")))
        assert len(nodes) == len(set(nodes))
        # For m attributes: each of the m RHS choices has 2^(m-1)-1 non-empty
        # LHS subsets of the remaining attributes.
        assert len(nodes) == 3 * (2**2 - 1)

    def test_walk_levels_descend(self):
        nodes = list(walk_lattice(("A", "B", "C", "D")))
        levels = [node.level for node in nodes]
        assert levels == sorted(levels, reverse=True)

    @pytest.mark.parametrize("width,expected", [(2, 2), (3, 9), (4, 28)])
    def test_node_counts_for_width(self, width, expected):
        attributes = tuple(f"X{i}" for i in range(width))
        assert len(list(walk_lattice(attributes))) == expected

"""Round-trip tests of the wire codec (JSON and binary forms)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import F2Config
from repro.core.scheme import F2Scheme
from repro.crypto.keys import KeyGen
from repro.crypto.probabilistic import Ciphertext
from repro.exceptions import WireError
from repro.fd.fd import FDSet, FunctionalDependency
from repro.fd.tane import TaneResult, tane_with_stats
from repro.relational.table import Relation
from repro.wire import (
    WIRE_BINARY,
    WIRE_FORMS,
    WIRE_JSON,
    decode_cells,
    decode_encrypted_table,
    decode_fdset,
    decode_relation,
    decode_tane_result,
    detect_form,
    encode_cells,
    encode_encrypted_table,
    encode_fdset,
    encode_relation,
    encode_tane_result,
)
from repro.wire.binary import ByteReader, ByteWriter

FAST = settings(max_examples=60, deadline=None)
SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
cell_strings = st.text(min_size=0, max_size=12)
ciphertexts = st.builds(
    Ciphertext,
    nonce=st.binary(min_size=1, max_size=20),
    payload=st.binary(min_size=0, max_size=24),
)
cells = st.one_of(
    cell_strings,
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.booleans(),
    st.none(),
    ciphertexts,
)


@st.composite
def relations(draw, max_attributes=4, max_rows=12):
    """Relations mixing plain strings, ints, and ciphertext cells."""
    num_attributes = draw(st.integers(min_value=1, max_value=max_attributes))
    num_rows = draw(st.integers(min_value=0, max_value=max_rows))
    attributes = [f"X{i}" for i in range(num_attributes)]
    # Per-column value pools: repeated draws exercise the dictionary paths.
    pools = [
        draw(st.lists(cells, min_size=1, max_size=4, unique=True))
        for _ in range(num_attributes)
    ]
    rows = [
        [pools[i][draw(st.integers(min_value=0, max_value=len(pools[i]) - 1))]
         for i in range(num_attributes)]
        for _ in range(num_rows)
    ]
    return Relation(attributes, rows, name=draw(st.sampled_from(["t", "orders", "ζ-table"])))


@st.composite
def fdsets(draw):
    attributes = [f"X{i}" for i in range(5)]
    fds = FDSet()
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        lhs = draw(st.lists(st.sampled_from(attributes), min_size=1, max_size=3, unique=True))
        rhs = draw(st.sampled_from([a for a in attributes if a not in lhs]))
        fds.add(FunctionalDependency(lhs, rhs))
    return fds


# ----------------------------------------------------------------------
# Property tests: encode -> decode is the identity, in both forms
# ----------------------------------------------------------------------
class TestRoundTripProperties:
    @FAST
    @given(relations(), st.sampled_from(WIRE_FORMS))
    def test_relation_roundtrip(self, relation, form):
        decoded = decode_relation(encode_relation(relation, form))
        assert decoded == relation
        assert decoded.name == relation.name
        assert decoded.attributes == relation.attributes

    @FAST
    @given(st.lists(cells, max_size=12), st.sampled_from(WIRE_FORMS))
    def test_cells_roundtrip(self, values, form):
        assert decode_cells(encode_cells(values, form)) == values

    @FAST
    @given(fdsets(), st.sampled_from(WIRE_FORMS))
    def test_fdset_roundtrip(self, fds, form):
        assert decode_fdset(encode_fdset(fds, form)) == fds

    @FAST
    @given(
        fdsets(),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.sampled_from(WIRE_FORMS),
    )
    def test_tane_result_roundtrip(self, fds, elapsed, form):
        result = TaneResult(
            fds=fds,
            elapsed_seconds=elapsed,
            levels_processed=3,
            candidates_examined=17,
            partitions_computed=9,
            parameters={"validated": True, "backend": "python", "max_lhs": None},
        )
        decoded = decode_tane_result(encode_tane_result(result, form))
        assert decoded.fds == result.fds
        assert decoded.elapsed_seconds == result.elapsed_seconds  # exact floats
        assert decoded.levels_processed == result.levels_processed
        assert decoded.candidates_examined == result.candidates_examined
        assert decoded.partitions_computed == result.partitions_computed
        assert decoded.parameters == result.parameters

    @SLOW
    @given(st.integers(min_value=0, max_value=2**10 - 1), st.sampled_from([0.5, 0.34]))
    def test_encrypted_table_roundtrip(self, seed, alpha):
        relation = Relation(
            ["A", "B", "C"],
            [
                [f"a{(seed + i) % 3}", f"b{(seed + i) % 2}", f"c{i}"]
                for i in range(8)
            ],
        )
        scheme = F2Scheme(
            key=KeyGen.symmetric_from_seed(seed), config=F2Config(alpha=alpha, seed=seed)
        )
        table = scheme.encrypt(relation)
        for form in WIRE_FORMS:
            decoded = decode_encrypted_table(encode_encrypted_table(table, form))
            assert decoded.relation == table.relation
            assert decoded.provenance == table.provenance
            assert decoded.config == table.config
            assert decoded.stats == table.stats
            assert decoded.masses == table.masses
            assert decoded.ecg_summaries == table.ecg_summaries


# ----------------------------------------------------------------------
# Form-specific behaviour
# ----------------------------------------------------------------------
class TestForms:
    def test_detect_form(self, zipcode_table):
        assert detect_form(encode_relation(zipcode_table, WIRE_JSON)) == WIRE_JSON
        assert detect_form(encode_relation(zipcode_table, WIRE_BINARY)) == WIRE_BINARY
        with pytest.raises(WireError):
            detect_form(b"\x00\x01\x02")

    def test_json_form_is_readable_json(self, zipcode_table):
        doc = json.loads(encode_relation(zipcode_table, WIRE_JSON))
        assert doc["type"] == "relation"
        assert doc["attributes"] == list(zipcode_table.attributes)
        assert doc["num_rows"] == zipcode_table.num_rows

    def test_dictionaries_serialized_once(self, seeded_scheme, zipcode_table):
        # The ciphertext relation repeats instance ciphertexts by design;
        # the columnar encoding must not repeat their bytes.
        view = seeded_scheme.encrypt(zipcode_table).server_view()
        encoded = len(encode_relation(view, WIRE_BINARY))
        naive = sum(
            len(cell.to_bytes())
            for attr in view.attributes
            for cell in view.column(attr)
        )
        # Well under the per-cell total: repeated ciphertexts cost one
        # dictionary entry plus a small fixed-width code each.
        assert encoded < naive * 0.8

    def test_binary_more_compact_than_json(self, seeded_scheme, zipcode_table):
        view = seeded_scheme.encrypt(zipcode_table).server_view()
        assert len(encode_relation(view, WIRE_BINARY)) < len(
            encode_relation(view, WIRE_JSON)
        )

    def test_unknown_form_rejected(self, zipcode_table):
        with pytest.raises(WireError):
            encode_relation(zipcode_table, "msgpack")

    def test_truncated_binary_rejected(self, zipcode_table):
        data = encode_relation(zipcode_table, WIRE_BINARY)
        with pytest.raises(WireError):
            decode_relation(data[: len(data) // 2])

    def test_wrong_type_tag_rejected(self, zipcode_table):
        data = encode_relation(zipcode_table, WIRE_JSON)
        with pytest.raises(WireError):
            decode_fdset(data)

    def test_malformed_documents_raise_wire_error_not_raw_exceptions(self, zipcode_table):
        # Missing column keys (would be KeyError), corrupted embedded JSON
        # blobs (would be UnicodeDecodeError/JSONDecodeError): all must
        # surface as WireError, the codec's documented contract.
        with pytest.raises(WireError):
            decode_relation(
                b'{"type":"relation","name":"t","attributes":["A"],'
                b'"num_rows":1,"columns":[{"codes":[0]}]}'
            )
        result = tane_with_stats(zipcode_table)
        data = bytearray(encode_tane_result(result, WIRE_BINARY))
        data[-3:] = b"\xff\xfe\xfd"  # corrupt the trailing parameters blob
        with pytest.raises(WireError):
            decode_tane_result(bytes(data))

    def test_float_cells_roundtrip_exactly(self):
        values = [0.1, -2.5, 1e300, 5e-324]
        for form in WIRE_FORMS:
            assert decode_cells(encode_cells(values, form)) == values

    def test_none_cells_roundtrip(self):
        relation = Relation(["A", "B"], [[None, "x"], ["y", None]])
        for form in WIRE_FORMS:
            assert decode_relation(encode_relation(relation, form)) == relation

    def test_unsupported_cell_type_rejected(self):
        with pytest.raises(WireError):
            encode_cells([object()], WIRE_BINARY)
        with pytest.raises(WireError):
            encode_cells([object()], WIRE_JSON)

    def test_tane_result_from_real_run(self, zipcode_table):
        result = tane_with_stats(zipcode_table)
        for form in WIRE_FORMS:
            decoded = decode_tane_result(encode_tane_result(result, form))
            assert decoded.fds == result.fds
            assert decoded.elapsed_seconds == result.elapsed_seconds


# ----------------------------------------------------------------------
# Binary primitives
# ----------------------------------------------------------------------
class TestBinaryPrimitives:
    @FAST
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_uvarint_roundtrip(self, value):
        writer = ByteWriter()
        writer.uvarint(value)
        assert ByteReader(writer.getvalue()).uvarint() == value

    @FAST
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_svarint_roundtrip(self, value):
        writer = ByteWriter()
        writer.svarint(value)
        assert ByteReader(writer.getvalue()).svarint() == value

    @FAST
    @given(
        st.lists(st.integers(min_value=0, max_value=2**17), max_size=40),
    )
    def test_code_array_roundtrip(self, codes):
        num_values = max(codes, default=0) + 1
        writer = ByteWriter()
        writer.code_array(codes, num_values)
        assert ByteReader(writer.getvalue()).code_array() == codes

    def test_code_array_width_selection(self):
        from repro.wire.binary import code_width

        assert code_width(1) == 1
        assert code_width(256) == 1
        assert code_width(257) == 2
        assert code_width(1 << 16) == 2
        assert code_width((1 << 16) + 1) == 4
        assert code_width(1 << 33) == 8

    def test_reader_bounds_checked(self):
        reader = ByteReader(b"\x05")
        with pytest.raises(WireError):
            reader.lp_bytes()

"""Integration tests that replay the paper's running examples end to end.

Each test corresponds to a concrete figure or example of the paper and checks
the behaviour the paper uses that example to illustrate.
"""

import pytest

from repro.core.config import F2Config
from repro.core.scheme import F2Scheme
from repro.crypto.deterministic import DeterministicCipher
from repro.crypto.keys import KeyGen
from repro.fd.fd import FunctionalDependency
from repro.fd.mas import find_maximal_attribute_sets
from repro.fd.tane import tane
from repro.fd.verify import fd_holds, fds_equivalent


class TestFigure1:
    """Figure 1: deterministic vs probabilistic vs FD-preserving encryption."""

    def test_base_table_has_fd_a_to_b(self, paper_figure1_table):
        assert fd_holds(paper_figure1_table, FunctionalDependency(["A"], "B"))

    def test_deterministic_encryption_preserves_fd_but_leaks_frequencies(
        self, paper_figure1_table
    ):
        from collections import Counter

        cipher = DeterministicCipher(KeyGen.symmetric_from_seed(1))
        encrypted = paper_figure1_table.empty_like()
        for row in paper_figure1_table.rows():
            encrypted.append([cipher.encrypt(value) for value in row])
        # FD preserved (Figure 1 (b))...
        assert fd_holds(encrypted, FunctionalDependency(["A"], "B"))
        # ... but the frequency histogram of every column is identical.
        for attribute in paper_figure1_table.attributes:
            plain = sorted(Counter(paper_figure1_table.column(attribute)).values())
            cipher_counts = sorted(Counter(encrypted.column(attribute)).values())
            assert plain == cipher_counts

    def test_f2_preserves_fd_and_hides_frequencies(self, paper_figure1_table):
        from collections import Counter

        scheme = F2Scheme(
            key=KeyGen.symmetric_from_seed(2), config=F2Config(alpha=0.5, split_factor=2, seed=2)
        )
        encrypted = scheme.encrypt(paper_figure1_table)
        # FD preserved on the server view (Figure 1 (d))...
        assert fds_equivalent(tane(paper_figure1_table), tane(encrypted.server_view()))
        # ... and the dominant frequency of column A is strictly reduced.
        plain_max = max(Counter(paper_figure1_table.column("A")).values())
        cipher_max = max(Counter(encrypted.relation.column("A")).values())
        assert cipher_max < plain_max


class TestFigure3:
    """Figure 3: conflict resolution across the overlapping MASs {A,B}, {B,C}."""

    def test_mas_structure(self, paper_figure3_table):
        masses = {mas.as_set for mas in find_maximal_attribute_sets(paper_figure3_table)}
        assert masses == {frozenset({"A", "B"}), frozenset({"B", "C"})}

    def test_fd_c_to_b_holds_in_plaintext(self, paper_figure3_table):
        assert fd_holds(paper_figure3_table, FunctionalDependency(["C"], "B"))

    def test_fd_c_to_b_survives_encryption(self, paper_figure3_table):
        """The paper's point: the naive conflict fix breaks C -> B; ours must not."""
        scheme = F2Scheme(
            key=KeyGen.symmetric_from_seed(3), config=F2Config(alpha=0.34, seed=3)
        )
        encrypted = scheme.encrypt(paper_figure3_table)
        assert fd_holds(encrypted.server_view(), FunctionalDependency(["C"], "B"))

    def test_conflicting_tuples_are_replaced_by_two_rows(self, paper_figure3_table):
        scheme = F2Scheme(
            key=KeyGen.symmetric_from_seed(3), config=F2Config(alpha=0.34, seed=3)
        )
        encrypted = scheme.encrypt(paper_figure3_table)
        assert encrypted.stats.num_conflicting_tuples >= 1
        assert encrypted.stats.rows_added_conflict == encrypted.stats.num_conflicting_tuples

    def test_full_fd_equivalence(self, paper_figure3_table):
        scheme = F2Scheme(
            key=KeyGen.symmetric_from_seed(4), config=F2Config(alpha=0.34, seed=4)
        )
        encrypted = scheme.encrypt(paper_figure3_table)
        assert fds_equivalent(tane(paper_figure3_table), tane(encrypted.server_view()))


class TestFigure4:
    """Figure 4 / Example 3.1: eliminating the false positive A -> B."""

    def test_a_to_b_does_not_hold_in_plaintext(self, paper_figure4_table):
        assert not fd_holds(paper_figure4_table, FunctionalDependency(["A"], "B"))

    def test_steps_1_to_3_alone_introduce_the_false_positive(self, paper_figure4_table):
        config = F2Config(alpha=1 / 3, eliminate_false_positives=False, seed=5)
        scheme = F2Scheme(key=KeyGen.symmetric_from_seed(5), config=config)
        encrypted = scheme.encrypt(paper_figure4_table)
        assert fd_holds(encrypted.server_view(), FunctionalDependency(["A"], "B"))

    def test_step_4_restores_the_violation(self, paper_figure4_table):
        config = F2Config(alpha=1 / 3, seed=5)
        scheme = F2Scheme(key=KeyGen.symmetric_from_seed(5), config=config)
        encrypted = scheme.encrypt(paper_figure4_table)
        assert not fd_holds(encrypted.server_view(), FunctionalDependency(["A"], "B"))

    def test_artificial_record_count_matches_theorem_3_6(self, paper_figure4_table):
        """2k <= added <= bound, with k = ceil(1/alpha) (Theorem 3.6)."""
        import math

        alpha = 1 / 3
        config = F2Config(alpha=alpha, seed=5)
        scheme = F2Scheme(key=KeyGen.symmetric_from_seed(5), config=config)
        encrypted = scheme.encrypt(paper_figure4_table)
        k = math.ceil(1 / alpha)
        added = encrypted.stats.rows_added_false_positive
        assert added >= 2 * k
        num_attributes = paper_figure4_table.num_attributes
        loose_bound = 2 * k * num_attributes * math.comb(num_attributes - 1, (num_attributes - 1) // 2)
        assert added <= loose_bound

"""Fixture: entropy draws outside the sanctioned crypto modules."""

import os
import secrets


def fresh_nonce():
    return os.urandom(16)  # line 8: true positive


def fresh_token():
    return secrets.token_hex(8)  # line 12: true positive


def allowed_draw():
    # repro: allow(entropy-discipline): fixture demonstrating a justified allow
    return os.urandom(8)


def seeded_is_fine(seed):
    import random

    return random.Random(seed).random()  # deterministic: clean


def unseeded_is_not():
    import random

    return random.Random()  # line 29: true positive (OS-seeded)

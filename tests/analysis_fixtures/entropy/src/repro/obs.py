"""Fixture: repro.obs is denied any randomness source."""

import random  # line 3: true positive (obs never draws entropy)


def jitter(seed):
    return random.Random(seed)  # line 7: true positive (even seeded)

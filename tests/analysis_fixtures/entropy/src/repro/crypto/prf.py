"""Fixture: sanctioned crypto module — entropy draws are clean here."""

import os
import secrets


def key_material():
    return os.urandom(32) + secrets.token_bytes(16)

"""Fixture: metric handles minted inside per-row loops."""

from repro import obs


def hot_bad(rows):
    for row in rows:
        obs.counter("rows.processed").inc()  # line 8: true positive


def hot_suppressed(rows):
    for row in rows:
        # repro: allow(metrics-discipline): fixture demonstrating a justified allow
        obs.counter("rows.processed").inc()


def hot_ok(rows):
    processed = obs.counter("rows.processed")
    for row in rows:
        processed.inc()  # cached handle: clean


def setup_ok():
    return obs.gauge("table.rows")  # no loop: clean

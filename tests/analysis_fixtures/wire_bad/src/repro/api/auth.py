"""Fixture: ErrorCode enum with a member the CLI forgets to map."""


class ErrorCode:
    BAD_REQUEST = "BAD_REQUEST"
    FORBIDDEN = "FORBIDDEN"
    SNAPSHOT_UNAVAILABLE = "SNAPSHOT_UNAVAILABLE"

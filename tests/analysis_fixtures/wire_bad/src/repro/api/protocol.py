"""Fixture: a message type registered on the wire but never handled."""


class QueryRequest:
    pass


class InsertBatch:
    pass


class QueryResult:
    pass


MESSAGE_TYPES = {
    "query_request": QueryRequest,
    "insert_batch": InsertBatch,  # line 18: true positive (no handler)
    "query_result": QueryResult,  # replies need no handler: clean
}


class ProtocolServer:
    _HANDLERS = {
        QueryRequest: "_handle_query",
    }

"""Fixture: exit-code table missing an ErrorCode row."""

ERROR_CODE_EXITS = {
    "BAD_REQUEST": 3,
    "FORBIDDEN": 5,
    # SNAPSHOT_UNAVAILABLE missing: true positive
}

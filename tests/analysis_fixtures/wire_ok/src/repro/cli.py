"""Fixture: complete exit-code table."""

ERROR_CODE_EXITS = {
    "BAD_REQUEST": 3,
    "FORBIDDEN": 5,
}

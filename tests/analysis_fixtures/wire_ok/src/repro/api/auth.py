"""Fixture: every ErrorCode member has a CLI exit row."""


class ErrorCode:
    BAD_REQUEST = "BAD_REQUEST"
    FORBIDDEN = "FORBIDDEN"

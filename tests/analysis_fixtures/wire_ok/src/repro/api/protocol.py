"""Fixture: a fully wired protocol — every check passes."""

from repro import obs


class QueryRequest:
    pass


class Hello:
    pass


class QueryResult:
    pass


MESSAGE_TYPES = {
    "query_request": QueryRequest,
    "hello": Hello,
    "query_result": QueryResult,
}


class ProtocolServer:
    _HANDLERS = {
        QueryRequest: "_handle_query",
    }

    def handle(self, message):
        if isinstance(message, Hello):  # isinstance dispatch counts
            return self._hello(message)
        return self._dispatch(message)

    def _fail(self, reply):
        obs.counter("server.errors", code=reply.code).inc()
        self.errors.record(reply.code)
        return reply

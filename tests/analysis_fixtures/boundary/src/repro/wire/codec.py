"""Fixture stand-in for the wire codec (no owner-only imports)."""


class Ciphertext:
    pass

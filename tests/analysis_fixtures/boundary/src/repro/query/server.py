"""Fixture: a clean server module — container imports are fine."""

from repro.wire.codec import Ciphertext


def evaluate(rows):
    return [row for row in rows if isinstance(row, Ciphertext)]

"""Fixture: the owner-only session module (target of the leak)."""


def restore(blob):
    return blob

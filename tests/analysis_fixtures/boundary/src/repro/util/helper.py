"""Fixture helper: not server-side itself, but imports an owner module."""

import repro.api.session


def resume(blob):
    return repro.api.session.restore(blob)

"""Fixture: a store module crossing the plaintext boundary directly."""

from repro.crypto.keys import SymmetricKey  # line 3: true positive


class Store:
    def peek(self, cipher, row):
        return cipher.decrypt(row)  # line 8: true positive

    def peek_suppressed(self, cipher, row):
        # repro: allow(plaintext-boundary): fixture demonstrating a justified allow
        return cipher.decrypt(row)

"""Fixture: the boundary leaks transitively through a helper import."""

from repro.util.helper import resume  # innocent-looking edge


def restore(blob):
    return resume(blob)

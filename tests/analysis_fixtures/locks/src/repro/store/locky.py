"""Fixture: blocking I/O and nesting inside _RWLock sections."""


class Table:
    def __init__(self, lock, sock, path):
        self._table_lock = lock
        self._sock = sock
        self._path = path

    def flush_bad(self):
        with self._table_lock.write():
            self._sock.sendall(b"frame")  # line 12: true positive

    def snapshot_bad(self):
        with self._table_lock.write():
            self._path.write_bytes(b"snapshot")  # line 16: true positive

    def flush_suppressed(self):
        with self._table_lock.write():
            # repro: allow(lock-discipline): fixture demonstrating a justified allow
            self._sock.sendall(b"frame")

    def flush_ok(self):
        with self._table_lock.write():
            frame = b"frame"
        self._sock.sendall(frame)  # outside the section: clean

    def read_is_fine(self):
        with self._table_lock.read():
            return list(self._rows)


class TwoTables:
    def __init__(self, lock_a, lock_b):
        self._lock_a = lock_a
        self._lock_b = lock_b

    def copy_bad(self):
        with self._lock_a.read():
            with self._lock_b.write():  # line 40: true positive (nested)
                pass

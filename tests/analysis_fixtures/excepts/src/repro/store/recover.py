"""Fixture: broad exception handling in store recovery paths."""


def swallow_bad(path):
    try:
        return path.read_bytes()
    except Exception:  # line 7: true positive (silent swallow)
        return None


def bare_bad(path):
    try:
        return path.read_bytes()
    except:  # noqa: E722  # line 14: true positive (bare except)
        return None


def convert_ok(path):
    try:
        return path.read_bytes()
    except Exception as exc:
        raise RuntimeError(f"recovery failed: {exc}") from exc


def narrow_ok(path):
    try:
        return path.read_bytes()
    except OSError:
        return None


def swallow_suppressed(path):
    try:
        return path.read_bytes()
    # repro: allow(exception-discipline): fixture demonstrating a justified allow
    except Exception:
        return None

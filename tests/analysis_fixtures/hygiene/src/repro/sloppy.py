"""Fixture: suppression-hygiene violations."""

import os


def no_justification():
    return os.urandom(4)  # repro: allow(entropy-discipline)


def stale_allow():
    # repro: allow(lock-discipline): nothing on the next line ever fires this rule
    return 42


def unknown_rule():
    # repro: allow(no-such-rule): the rule name is misspelled
    return 43

"""Property-based tests (hypothesis) for the core invariants of the library.

These cover the invariants listed in DESIGN.md section 5 on randomly generated
small tables: FD preservation, requirement 1/2 of the FD-preserving
probabilistic encryption, ECG structural invariants, decryption round-trips,
and the agreement of TANE with the brute-force oracle.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import F2Config
from repro.core.ecg import build_equivalence_class_groups
from repro.core.plan import FreshValueFactory
from repro.core.scheme import F2Scheme
from repro.core.security import verify_alpha_security
from repro.core.split_scale import build_ecg_plan, find_optimal_split_point
from repro.crypto.keys import KeyGen
from repro.crypto.probabilistic import ProbabilisticCipher
from repro.fd.discovery import discover_fds_naive
from repro.fd.fd import FDSet, FunctionalDependency
from repro.fd.mas import find_maximal_attribute_sets
from repro.fd.tane import tane
from repro.relational.partition import Partition
from repro.relational.table import Relation

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
FAST = settings(max_examples=60, deadline=None)


@st.composite
def small_tables(draw, max_attributes=4, max_rows=18, max_domain=3):
    """Random categorical tables small enough for exhaustive oracles."""
    num_attributes = draw(st.integers(min_value=2, max_value=max_attributes))
    num_rows = draw(st.integers(min_value=2, max_value=max_rows))
    domains = [draw(st.integers(min_value=1, max_value=max_domain)) for _ in range(num_attributes)]
    attributes = [f"X{i}" for i in range(num_attributes)]
    rows = []
    for _ in range(num_rows):
        rows.append(
            [f"v{i}_{draw(st.integers(min_value=0, max_value=domains[i] - 1))}" for i in range(num_attributes)]
        )
    return Relation(attributes, rows, name="hypothesis")


@st.composite
def size_lists(draw):
    sizes = draw(st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=8))
    return sorted(sizes)


# ----------------------------------------------------------------------
# FD discovery properties
# ----------------------------------------------------------------------
@given(small_tables())
@SLOW
def test_tane_equals_naive_oracle(table):
    assert tane(table).equivalent_to(discover_fds_naive(table))


@given(small_tables())
@SLOW
def test_discovered_fds_actually_hold(table):
    for fd in tane(table):
        lhs_partition = Partition.build(table, fd.lhs)
        rhs_partition = Partition.build(table, [fd.rhs])
        assert lhs_partition.refines(rhs_partition)


@given(small_tables())
@SLOW
def test_mas_covers_every_non_key_fd(table):
    masses = find_maximal_attribute_sets(table)
    for fd in tane(table):
        lhs_has_duplicates = any(
            count > 1 for count in table.value_frequencies(fd.lhs).values()
        )
        if lhs_has_duplicates:
            assert any(fd.attributes <= mas.as_set for mas in masses)


@given(small_tables())
@SLOW
def test_mas_maximality_property(table):
    masses = find_maximal_attribute_sets(table)
    all_attributes = set(table.attributes)
    for mas in masses:
        frequencies = table.value_frequencies(mas.attributes)
        assert any(count > 1 for count in frequencies.values())
        for extra in all_attributes - mas.as_set:
            extended = table.value_frequencies(list(mas.attributes) + [extra])
            assert all(count <= 1 for count in extended.values())


# ----------------------------------------------------------------------
# End-to-end F2 properties
# ----------------------------------------------------------------------
@given(small_tables(max_attributes=4, max_rows=14), st.sampled_from([0.5, 0.34]))
@SLOW
def test_f2_preserves_fds(table, alpha):
    """Every plaintext FD still holds on the encrypted view (one-directional).

    This is the direction the paper's Theorem 1 guarantees: F2 *preserves*
    the FDs of the input. The converse — that the encrypted view gains no
    extra FDs — is NOT guaranteed on tiny tables: splitting rows into
    frequency-hiding copies can accidentally align two columns that were
    independent in the plaintext. ``test_f2_spurious_fd_example`` below
    pins a concrete instance; the deliberate decision to assert only
    preservation is recorded in ROADMAP.md.
    """
    scheme = F2Scheme(key=KeyGen.symmetric_from_seed(1), config=F2Config(alpha=alpha, seed=1))
    encrypted = scheme.encrypt(table)
    plain_fds = tane(table)
    encrypted_fds = tane(encrypted.server_view())
    missing = [fd for fd in plain_fds if not encrypted_fds.implies(fd)]
    assert not missing, f"plaintext FDs lost by encryption: {missing}"


#: The hypothesis-found counterexample: a 6-row table at alpha=0.5 whose
#: encrypted view gains the spurious FDs {X2,X3}->X0 and {X2,X3}->X1.
_SPURIOUS_FD_TABLE = Relation(
    ["X0", "X1", "X2", "X3"],
    [
        ["v0_0", "v1_2", "v2_2", "v3_2"],
        ["v0_0", "v1_1", "v2_2", "v3_1"],
        ["v0_2", "v1_0", "v2_1", "v3_2"],
        ["v0_2", "v1_1", "v2_0", "v3_2"],
        ["v0_1", "v1_1", "v2_1", "v3_1"],
        ["v0_2", "v1_0", "v2_2", "v3_1"],
    ],
    name="spurious-fd-pin",
)


def _spurious_fd_views():
    scheme = F2Scheme(key=KeyGen.symmetric_from_seed(1), config=F2Config(alpha=0.5, seed=1))
    encrypted = scheme.encrypt(_SPURIOUS_FD_TABLE)
    return tane(_SPURIOUS_FD_TABLE), tane(encrypted.server_view())


def test_f2_spurious_fd_example_preserves_fds():
    """The pinned counterexample still satisfies one-directional preservation."""
    plain_fds, encrypted_fds = _spurious_fd_views()
    assert all(encrypted_fds.implies(fd) for fd in plain_fds)


@pytest.mark.xfail(
    strict=True,
    reason=(
        "known spurious-FD example: splitting rows into frequency-hiding "
        "copies can align columns that were independent in the plaintext, "
        "so strict FD equivalence fails on tiny tables (see ROADMAP.md). "
        "An XPASS means the splitting strategy changed — revisit the note."
    ),
)
def test_f2_spurious_fd_example_equivalence():
    """Strict-xfail pin: FD *equivalence* fails on the counterexample."""
    plain_fds, encrypted_fds = _spurious_fd_views()
    assert plain_fds.equivalent_to(encrypted_fds)


@given(small_tables(max_attributes=4, max_rows=14))
@SLOW
def test_f2_decryption_roundtrip(table):
    scheme = F2Scheme(key=KeyGen.symmetric_from_seed(2), config=F2Config(alpha=0.5, seed=2))
    encrypted = scheme.encrypt(table)
    decrypted = scheme.decrypt(encrypted)
    original = sorted(tuple(str(v) for v in row) for row in table.rows())
    recovered = sorted(tuple(row) for row in decrypted.rows())
    assert original == recovered


@given(small_tables(max_attributes=3, max_rows=12), st.sampled_from([0.5, 0.25]))
@SLOW
def test_f2_alpha_security_invariants(table, alpha):
    scheme = F2Scheme(key=KeyGen.symmetric_from_seed(3), config=F2Config(alpha=alpha, seed=3))
    encrypted = scheme.encrypt(table)
    assert verify_alpha_security(encrypted).satisfied


# ----------------------------------------------------------------------
# Step-level properties
# ----------------------------------------------------------------------
@given(small_tables(max_attributes=3, max_rows=16), st.integers(min_value=1, max_value=5))
@SLOW
def test_ecg_invariants(table, group_size):
    factory = FreshValueFactory(seed=0)
    masses = find_maximal_attribute_sets(table)
    for mas in masses:
        partition = Partition.build(table, mas.attributes)
        result = build_equivalence_class_groups(partition, group_size, factory)
        for group in result.groups:
            assert len(group.members) >= group_size
            assert group.is_collision_free()


@given(size_lists(), st.integers(min_value=1, max_value=4))
@FAST
def test_split_point_copies_match_target(sizes, split_factor):
    split_point, target, copies = find_optimal_split_point(sizes, split_factor)
    assert copies >= 0
    assert target >= 1
    # Re-derive the copy count from the definition and compare.
    derived = 0
    count = len(sizes)
    for index, size in enumerate(sizes, start=1):
        if split_point <= count and index >= split_point:
            derived += split_factor * target - size
        else:
            derived += target - size
    assert derived == copies


@given(size_lists(), st.integers(min_value=1, max_value=4))
@FAST
def test_ecg_plan_homogenises_frequencies(sizes, split_factor):
    from tests.test_split_scale import make_group

    plan = build_ecg_plan(make_group(sizes), split_factor=split_factor)
    frequencies = plan.instance_frequencies()
    assert len(set(frequencies)) == 1


@given(
    st.lists(st.text(min_size=0, max_size=20), min_size=1, max_size=10),
    st.integers(min_value=0, max_value=2**32),
)
@FAST
def test_probabilistic_cipher_roundtrip(values, key_seed):
    cipher = ProbabilisticCipher(KeyGen.symmetric_from_seed(key_seed))
    for value in values:
        assert cipher.decrypt(cipher.encrypt(value)) == value


@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=2, max_size=30))
@FAST
def test_closure_is_monotone_and_idempotent(symbols):
    fds = FDSet(
        FunctionalDependency([symbols[i]], symbols[i + 1])
        for i in range(len(symbols) - 1)
        if symbols[i] != symbols[i + 1]
    )
    closure = fds.closure(["a"])
    assert "a" in closure
    assert fds.closure(closure) == closure

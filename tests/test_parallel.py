"""Process-parallel materialisation: sharding, worker resolution, identity.

The hard gate mirrors the materialiser's contract: for every worker count
the output bytes equal the serial per-cell path — the parent fixes the
entropy plan, workers run only deterministic HMAC + XOR.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import random

import pytest

from repro.api.pipeline import EncryptionPipeline
from repro.api.stages import materialize_row_plans
from repro.bench.harness import dataset_by_name
from repro.core.config import F2Config
from repro.core.plan import (
    FreshCell,
    FreshValueFactory,
    InstanceCell,
    RandomCell,
    RowPlan,
    RowProvenanceSpec,
)
from repro.crypto.keys import KeyGen
from repro.crypto.probabilistic import ProbabilisticCipher
from repro.exceptions import ConfigurationError
from repro.parallel import (
    DEFAULT_PARALLEL_THRESHOLD,
    WORKERS_ENV_VAR,
    encrypt_sharded,
    resolve_workers,
    shard_ranges,
)
from repro.relational.table import Relation

KEY = KeyGen.symmetric_from_seed(77)


def _patch_urandom(monkeypatch, seed: int = 1234) -> None:
    rng = random.Random(seed)
    monkeypatch.setattr(
        "repro.crypto.probabilistic.os.urandom",
        lambda n: bytes(rng.getrandbits(8) for _ in range(n)),
    )


# ----------------------------------------------------------------------
# Worker resolution and sharding
# ----------------------------------------------------------------------
class TestResolveWorkers:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert resolve_workers(None) == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        assert resolve_workers(None) == 1

    def test_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(-2) == 1


class TestShardRanges:
    @pytest.mark.parametrize(
        "count,shards", [(10, 3), (4096, 4), (5, 5), (3, 8), (1, 1), (7, 2)]
    )
    def test_covers_range_contiguously(self, count, shards):
        ranges = shard_ranges(count, shards)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == count
        for (_, stop), (next_start, _) in zip(ranges, ranges[1:]):
            assert stop == next_start

    def test_even_split(self):
        sizes = [stop - start for start, stop in shard_ranges(10, 3)]
        assert sorted(sizes) == [3, 3, 4]

    def test_never_more_shards_than_items(self):
        assert len(shard_ranges(3, 8)) == 3

    def test_zero_items(self):
        assert shard_ranges(0, 4) == [(0, 0)]


# ----------------------------------------------------------------------
# Sharded encryption byte-identity
# ----------------------------------------------------------------------
def _job_items(count: int = 64) -> list[tuple[object, object]]:
    items: list[tuple[object, object]] = []
    for index in range(count):
        if index % 3 == 0:
            items.append((f"value-{index}", f"mas{index % 4}:variant{index % 5}"))
        else:
            items.append((f"unique-{index}", None))
    return items


class TestEncryptSharded:
    def test_below_threshold_is_serial(self, monkeypatch):
        items = _job_items(8)
        _patch_urandom(monkeypatch, seed=21)
        serial = ProbabilisticCipher(KEY).encrypt_batch(items)
        _patch_urandom(monkeypatch, seed=21)
        sharded = encrypt_sharded(ProbabilisticCipher(KEY), items, workers=4)
        assert sharded == serial
        assert len(items) < DEFAULT_PARALLEL_THRESHOLD

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_byte_identical_to_serial(self, monkeypatch, workers):
        items = _job_items(64)
        _patch_urandom(monkeypatch, seed=33)
        serial = ProbabilisticCipher(KEY).encrypt_batch(items)
        _patch_urandom(monkeypatch, seed=33)
        sharded = encrypt_sharded(
            ProbabilisticCipher(KEY), items, workers=workers, threshold=2
        )
        assert sharded == serial

    def test_pool_failure_falls_back_without_double_draw(self, monkeypatch):
        items = _job_items(64)
        _patch_urandom(monkeypatch, seed=44)
        serial = ProbabilisticCipher(KEY).encrypt_batch(items)

        def broken_pool(*args, **kwargs):
            raise OSError("no process pools here")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", broken_pool)
        _patch_urandom(monkeypatch, seed=44)
        sharded = encrypt_sharded(
            ProbabilisticCipher(KEY), items, workers=4, threshold=2
        )
        assert sharded == serial


# ----------------------------------------------------------------------
# Materialiser identity across worker counts
# ----------------------------------------------------------------------
def _mixed_row_plans(num_rows: int = 24) -> tuple[Relation, list[RowPlan]]:
    relation = Relation(("A", "B", "C"), name="plans")
    plans: list[RowPlan] = []
    for row in range(num_rows):
        relation.append([f"a{row}", f"b{row % 5}", f"c{row}"])
        cells = {
            "A": InstanceCell(value=f"a{row % 6}", variant=f"mas0:v{row % 3}"),
            "B": RandomCell(value=f"b-unique-{row}"),
            "C": (
                FreshCell(token=f"=t:{row % 7}")
                if row % 2
                else RandomCell(value=f"c-unique-{row}")
            ),
        }
        plans.append(
            RowPlan(
                cells=cells,
                provenance=RowProvenanceSpec(
                    kind="original", source_row=row, authentic_attributes=frozenset("ABC")
                ),
            )
        )
    return relation, plans


class TestMaterializeWorkers:
    def _run(self, monkeypatch, workers: int, with_log: bool):
        relation, plans = _mixed_row_plans()
        _patch_urandom(monkeypatch, seed=5)
        encrypted, provenance = materialize_row_plans(
            relation,
            plans,
            ProbabilisticCipher(KEY),
            FreshValueFactory(seed=7),
            nonce_log={} if with_log else None,
            workers=workers,
            parallel_threshold=2,
        )
        return encrypted, provenance

    @pytest.mark.parametrize("with_log", [False, True])
    def test_workers_do_not_change_bytes(self, monkeypatch, with_log):
        serial, serial_provenance = self._run(monkeypatch, 1, with_log)
        parallel, parallel_provenance = self._run(monkeypatch, 2, with_log)
        assert parallel == serial
        assert [p.kind for p in parallel_provenance] == [
            p.kind for p in serial_provenance
        ]


# ----------------------------------------------------------------------
# Full pipeline: F2Config(workers=...) is byte-transparent
# ----------------------------------------------------------------------
def _pipeline_hash(monkeypatch, workers: "int | None") -> str:
    relation = dataset_by_name("orders", 200, seed=0)
    _patch_urandom(monkeypatch)
    pipeline = EncryptionPipeline(
        key=KeyGen.symmetric_from_seed(0),
        config=F2Config(alpha=0.2, seed=0, workers=workers),
    )
    encrypted = pipeline.run(relation)
    digest = hashlib.sha256()
    for row in encrypted.relation.rows():
        for cell in row:
            digest.update(str(cell).encode())
            digest.update(b"|")
        digest.update(b"\n")
    return digest.hexdigest()


class TestPipelineWorkers:
    def test_worker_count_is_byte_transparent(self, monkeypatch):
        assert _pipeline_hash(monkeypatch, 2) == _pipeline_hash(monkeypatch, None)

    def test_env_var_is_byte_transparent(self, monkeypatch):
        baseline = _pipeline_hash(monkeypatch, None)
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        assert _pipeline_hash(monkeypatch, None) == baseline


class TestConfigWorkers:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            F2Config(workers=0)
        with pytest.raises(ConfigurationError):
            F2Config(workers=-1)
        assert F2Config(workers=3).workers == 3
        assert F2Config().workers is None

    def test_workers_in_to_dict(self):
        assert F2Config(workers=2).to_dict()["workers"] == 2

"""Smoke tests that run every example script end to end (small sizes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "completed successfully" in result.stdout

    def test_outsourced_fd_discovery(self):
        result = run_example("outsourced_fd_discovery.py", "300")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "returned FDs match the plaintext FDs: True" in result.stdout

    def test_attack_resistance(self):
        result = run_example("attack_resistance.py", "300")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "completed successfully" in result.stdout

    def test_data_cleaning_service(self):
        result = run_example("data_cleaning_service.py", "250")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "completed successfully" in result.stdout

    def test_live_outsourced_database(self):
        result = run_example("live_outsourced_database.py", "150")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "completed successfully" in result.stdout
        assert "mode=full (reason=mas-changed)" in result.stdout

    def test_multi_tenant_service(self):
        result = run_example("multi_tenant_service.py", "150")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "completed successfully" in result.stdout
        assert "shipped as a delta" in result.stdout
        assert "rotation kills live sessions" in result.stdout

    def test_socket_protocol(self):
        result = run_example("socket_protocol.py", "150")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "completed successfully" in result.stdout
        assert "fds=True instance-ciphertext columns=True" in result.stdout
        assert "restored tables ['default']" in result.stdout

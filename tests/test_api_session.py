"""Tests of the DataOwner/ServiceProvider sessions and incremental updates."""

import pytest

from repro.api import DataOwner, ServiceProvider, run_protocol
from repro.api.pipeline import StageRecorder
from repro.core.config import F2Config
from repro.core.scheme import F2Scheme
from repro.crypto.keys import KeyGen
from repro.exceptions import EncryptionError
from repro.fd.tane import tane
from repro.fd.verify import fds_equivalent
from repro.relational.table import Relation

from tests.conftest import make_random_table


def roundtrip_rows(relation: Relation) -> list[tuple[str, ...]]:
    return sorted(tuple(str(value) for value in row) for row in relation.rows())


def make_owner(alpha: float = 0.25, seed: int = 7, key_seed: int = 42, **overrides) -> DataOwner:
    return DataOwner.from_seed(key_seed, config=F2Config(alpha=alpha, seed=seed, **overrides))


def zipcode_batch(start: int, count: int, city_map=None) -> list[list[str]]:
    cities = city_map or {"07030": "Hoboken", "07302": "JerseyCity", "07310": "JerseyCity"}
    zipcodes = sorted(cities)
    return [
        [
            zipcodes[(start + index) % len(zipcodes)],
            cities[zipcodes[(start + index) % len(zipcodes)]],
            f"street-{start + index}",
            "N" if index % 2 else "S",
        ]
        for index in range(count)
    ]


class TestProtocolRoundTrip:
    def test_outsource_discover_validate(self, zipcode_table):
        owner = make_owner()
        provider = ServiceProvider()
        result = run_protocol(owner, provider, zipcode_table)
        assert result.parameters["validated"] is True
        assert fds_equivalent(result.fds, tane(zipcode_table))

    def test_owner_decrypts_after_roundtrip(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        assert roundtrip_rows(owner.decrypt()) == roundtrip_rows(zipcode_table)

    def test_server_view_carries_no_owner_state(self, zipcode_table):
        owner = make_owner()
        encrypted = owner.outsource(zipcode_table)
        view = owner.server_view()
        assert view.num_rows == encrypted.num_rows
        plaintext_values = {str(v) for row in zipcode_table.rows() for v in row}
        ciphertext_values = {str(v) for row in view.rows() for v in row}
        assert not plaintext_values & ciphertext_values

    def test_outsource_copies_the_relation(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        zipcode_table.append(["07030", "Hoboken", "street-x", "N"])
        # The owner's retained plaintext is unaffected by caller mutations.
        assert owner.plaintext.num_rows == zipcode_table.num_rows - 1

    def test_audit_security(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        report = owner.audit_security()
        assert report.satisfied, report.violations

    def test_owner_requires_outsourced_state(self):
        owner = make_owner()
        with pytest.raises(EncryptionError):
            owner.server_view()
        with pytest.raises(EncryptionError):
            owner.decrypt()
        with pytest.raises(EncryptionError):
            owner.insert_rows([["a"]])

    def test_provider_requires_received_table(self):
        provider = ServiceProvider()
        with pytest.raises(EncryptionError):
            provider.discover_fds()

    def test_owner_hooks_observe_every_run(self, zipcode_table):
        recorder = StageRecorder()
        owner = DataOwner.from_seed(42, config=F2Config(alpha=0.25, seed=7), hooks=[recorder])
        owner.outsource(zipcode_table)
        assert {record.stage for record in recorder.records} >= {"MAX", "SSE", "SYN", "FP"}


class TestIncrementalInsert:
    def test_insert_preserves_fds_vs_scratch(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        batch = zipcode_batch(start=100, count=10)
        encrypted = owner.insert_rows(batch)

        full_plain = zipcode_table.copy()
        full_plain.extend(batch)
        scratch = F2Scheme(
            key=KeyGen.symmetric_from_seed(42), config=F2Config(alpha=0.25, seed=7)
        ).encrypt(full_plain)
        assert fds_equivalent(tane(encrypted.server_view()), tane(scratch.server_view()))
        assert fds_equivalent(tane(encrypted.server_view()), tane(full_plain))

    def test_insert_preserves_alpha_security(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        owner.insert_rows(zipcode_batch(start=100, count=10))
        report = owner.audit_security()
        assert report.satisfied, report.violations

    def test_insert_roundtrip_includes_batch(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        batch = zipcode_batch(start=100, count=6)
        owner.insert_rows(batch)
        expected = zipcode_table.copy()
        expected.extend(batch)
        assert roundtrip_rows(owner.decrypt()) == roundtrip_rows(expected)

    def test_consecutive_batches(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        expected = zipcode_table.copy()
        for round_number in range(3):
            batch = zipcode_batch(start=200 + 10 * round_number, count=5)
            expected.extend(batch)
            encrypted = owner.insert_rows(batch)
            assert encrypted.num_original_rows == expected.num_rows
            assert fds_equivalent(tane(encrypted.server_view()), tane(expected))
            assert owner.audit_security().satisfied
        assert roundtrip_rows(owner.decrypt()) == roundtrip_rows(expected)

    def test_incremental_mode_reuses_groups(self, zipcode_table):
        owner = make_owner()
        first = owner.outsource(zipcode_table)
        old_groups = len(first.ecg_summaries)
        encrypted = owner.insert_rows(zipcode_batch(start=100, count=4))
        report = owner.last_update_report
        assert report.mode == "incremental"
        assert report.batch_rows == 4
        assert report.groups_reused + report.groups_replanned == old_groups
        assert encrypted.metadata["update"]["mode"] == "incremental"

    def test_duplicate_record_triggers_full_fallback(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        duplicate = list(zipcode_table.row(0))
        encrypted = owner.insert_rows([duplicate])
        report = owner.last_update_report
        assert report.mode == "full"
        assert report.reason == "mas-changed"
        assert encrypted.metadata["update"]["mode"] == "full"
        expected = zipcode_table.copy()
        expected.append(duplicate)
        assert fds_equivalent(tane(encrypted.server_view()), tane(expected))
        assert roundtrip_rows(owner.decrypt()) == roundtrip_rows(expected)

    def test_fd_breaking_batch_still_preserves_fds(self, zipcode_table):
        # "Typo" breaks Zipcode -> City without changing the MAS structure;
        # the re-run false-positive stage must restore the violation in the
        # ciphertext.
        owner = make_owner()
        owner.outsource(zipcode_table)
        encrypted = owner.insert_rows([["07030", "Typo", "street-x", "N"]])
        expected = zipcode_table.copy()
        expected.append(["07030", "Typo", "street-x", "N"])
        assert fds_equivalent(tane(encrypted.server_view()), tane(expected))

    def test_empty_batch_rejected(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        with pytest.raises(EncryptionError):
            owner.insert_rows([])

    @pytest.mark.parametrize("seed", range(4))
    def test_insert_on_random_tables_matches_scratch(self, seed):
        table = make_random_table(seed + 500, num_attributes=4)
        owner = DataOwner.from_seed(
            seed, config=F2Config(alpha=0.34, split_factor=2, seed=seed)
        )
        owner.outsource(table)
        batch = [list(table.row(index % table.num_rows)) for index in range(3)]
        # Appending existing rows duplicates full records, so expect either
        # mode; FD preservation must hold regardless.
        encrypted = owner.insert_rows(batch)
        expected = table.copy()
        expected.extend(batch)
        assert fds_equivalent(tane(encrypted.server_view()), tane(expected))
        assert owner.audit_security().satisfied
        assert roundtrip_rows(owner.decrypt()) == roundtrip_rows(expected)

    def test_incremental_total_covers_all_steps(self, zipcode_table):
        # Regression: the MAS recheck and replanning run before the pipeline
        # tail, but they must still land in seconds_total.
        owner = make_owner()
        owner.outsource(zipcode_table)
        encrypted = owner.insert_rows(zipcode_batch(start=100, count=6))
        stats = encrypted.stats
        assert stats.seconds_total >= sum(stats.step_seconds().values())

    def test_provider_rediscovers_after_update(self, zipcode_table):
        owner = make_owner()
        provider = ServiceProvider()
        run_protocol(owner, provider, zipcode_table)
        owner.insert_rows(zipcode_batch(start=300, count=8))
        provider.receive(owner.server_view())
        discovery = provider.discover_fds()
        assert owner.validate_fds(discovery.fds)

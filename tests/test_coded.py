"""Tests of the dictionary-encoded columnar view (repro.relational.coded)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.backend import get_backend, numpy_available
from repro.exceptions import RelationError
from repro.relational.table import Relation

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture
def relation() -> Relation:
    return Relation(
        ["A", "B", "C"],
        [
            ["x", "1", "p"],
            ["y", "2", "q"],
            ["x", "1", "r"],
            ["x", "3", "p"],
            ["y", "1", "p"],
        ],
        name="coded-test",
    )


@pytest.mark.parametrize("backend", BACKENDS)
class TestCodedColumn:
    def test_dictionary_in_first_occurrence_order(self, relation, backend):
        column = relation.coded(backend).column("A")
        assert column.dictionary == ["x", "y"]
        assert list(column.codes) == [0, 1, 0, 0, 1]
        assert column.num_values == 2
        assert column.value_of(1) == "y"

    def test_counts_and_frequencies_match_counter(self, relation, backend):
        coded = relation.coded(backend)
        for attr in relation.attributes:
            frequencies = coded.frequencies(attr)
            assert frequencies == Counter(relation.column(attr))
            # Insertion order (most_common tie-breaking) must also match.
            assert list(frequencies) == list(dict.fromkeys(relation.column(attr)))


@pytest.mark.parametrize("backend", BACKENDS)
class TestCodedRelation:
    def test_group_rows_canonical_order(self, relation, backend):
        groups = relation.coded(backend).group_rows(["A", "B"])
        assert groups == [[0, 2], [1], [3], [4]]

    def test_group_rows_min_size(self, relation, backend):
        assert relation.coded(backend).group_rows(["A", "B"], min_size=2) == [[0, 2]]

    def test_has_duplicates(self, relation, backend):
        coded = relation.coded(backend)
        assert coded.has_duplicates(["A"])
        assert coded.has_duplicates(["A", "B"])
        assert not coded.has_duplicates(["A", "B", "C"])

    def test_class_code_matrix(self, relation, backend):
        coded = relation.coded(backend)
        groups = coded.group_rows(["A", "B"])
        matrix = coded.class_code_matrix(["A", "B"], groups)
        assert matrix == [(0, 0), (1, 1), (0, 2), (1, 0)]

    def test_empty_attribute_set_rejected(self, relation, backend):
        with pytest.raises(RelationError):
            relation.coded(backend).group_rows([])


class TestCaching:
    def test_coded_view_is_cached(self, relation):
        assert relation.coded("python") is relation.coded("python")

    def test_cache_is_per_backend(self, relation):
        if not numpy_available():
            pytest.skip("NumPy not installed")
        assert relation.coded("python") is not relation.coded("numpy")
        assert relation.coded("python").backend.name == "python"
        assert relation.coded("numpy").backend.name == "numpy"

    def test_append_invalidates(self, relation):
        before = relation.coded("python")
        assert before.column("A").dictionary == ["x", "y"]
        relation.append(["z", "9", "s"])
        after = relation.coded("python")
        assert after is not before
        assert after.column("A").dictionary == ["x", "y", "z"]
        assert after.num_rows == 6

    def test_set_value_invalidates(self, relation):
        before = relation.coded("python")
        relation.set_value(0, "A", "w")
        after = relation.coded("python")
        assert after is not before
        assert after.column("A").dictionary[0] == "w"

    def test_concat_result_has_fresh_cache(self, relation):
        other = relation.copy()
        merged = relation.concat(other)
        assert merged.coded("python").num_rows == 2 * relation.num_rows

    def test_version_counter(self, relation):
        version = relation.version
        relation.append(["x", "1", "p"])
        assert relation.version > version

    def test_stale_view_refuses_any_access(self, relation):
        stale = relation.coded("python")
        stale.column("A")
        relation.append(["z", "9", "s"])
        with pytest.raises(RelationError, match="stale"):
            stale.column("A")  # even already-encoded columns are refused
        with pytest.raises(RelationError, match="stale"):
            stale.column("B")
        # A fresh view sees the mutation.
        assert relation.coded("python").column("A").dictionary == ["x", "y", "z"]


def test_encryption_context_shares_the_coded_view():
    """ctx.coded is the one encoding every stage reads (relation cache)."""
    from repro.api.pipeline import EncryptionPipeline

    table = Relation(
        ["A", "B", "C"],
        [["a1", "b1", "c1"], ["a1", "b1", "c2"], ["a2", "b2", "c3"], ["a2", "b2", "c4"]],
    )
    pipeline = EncryptionPipeline()
    ctx = pipeline.new_context(table)
    view = ctx.coded
    assert view.backend is ctx.backend
    assert view is ctx.relation.coded(ctx.backend)
    pipeline.execute(ctx)
    # The stages worked off the same cached encoding, not a re-derivation.
    assert ctx.relation.coded(ctx.backend) is view


@pytest.mark.parametrize("backend", BACKENDS)
def test_partition_build_uses_codes(relation, backend):
    from repro.relational.partition import Partition

    partition = Partition.build(relation, ["A", "B"], backend=backend)
    assert [list(ec.rows) for ec in partition.classes] == [[0, 2], [1], [3], [4]]
    assert [ec.codes for ec in partition.classes] == [(0, 0), (1, 1), (0, 2), (1, 0)]
    assert [ec.representative for ec in partition.classes] == [
        ("x", "1"),
        ("y", "2"),
        ("x", "3"),
        ("y", "1"),
    ]
    assert partition.backend.name == backend

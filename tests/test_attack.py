"""Tests for the frequency-analysis adversaries and their evaluation."""

import random
from collections import Counter

import pytest

from repro.attack.evaluate import (
    AttackSample,
    evaluate_attack,
    samples_from_deterministic,
    samples_from_encrypted,
)
from repro.attack.frequency import FrequencyAttack
from repro.attack.kerckhoffs import KerckhoffsAttack
from repro.core.config import F2Config
from repro.core.scheme import F2Scheme
from repro.crypto.deterministic import DeterministicCipher
from repro.crypto.keys import KeyGen
from repro.exceptions import ReproError
from repro.relational.table import Relation


@pytest.fixture
def skewed_table() -> Relation:
    """A table with a skewed, moderate-cardinality attack target column."""
    rng = random.Random(5)
    values = ["alpha"] * 30 + ["beta"] * 14 + ["gamma"] * 8 + ["delta"] * 4 + ["epsilon"] * 2
    rng.shuffle(values)
    rows = [[value, f"id-{index}"] for index, value in enumerate(values)]
    return Relation(["Category", "RowId"], rows, name="skewed")


class TestFrequencyAttack:
    def test_invalid_strategy_rejected(self):
        with pytest.raises(ReproError):
            FrequencyAttack(strategy="voodoo")

    def test_candidate_set_exact_match(self):
        plain = Counter({"a": 5, "b": 3, "c": 3})
        assert set(FrequencyAttack.candidate_set(3, plain)) == {"b", "c"}

    def test_candidate_set_fallback_to_nearest_below(self):
        plain = Counter({"a": 5, "b": 3})
        assert FrequencyAttack.candidate_set(4, plain) == ["b"]

    def test_candidate_set_fallback_to_all(self):
        plain = Counter({"a": 5, "b": 3})
        assert set(FrequencyAttack.candidate_set(1, plain)) == {"a", "b"}

    def test_matching_guess_recovers_deterministic_encryption(self, skewed_table):
        cipher = DeterministicCipher(KeyGen.symmetric_from_seed(3))
        encrypted, samples = samples_from_deterministic(skewed_table, cipher, ["Category"])
        outcome = evaluate_attack(
            FrequencyAttack(), samples, skewed_table, encrypted, trials=300, seed=1
        )
        assert outcome.success_rate > 0.9

    def test_rank_strategy_also_breaks_deterministic(self, skewed_table):
        cipher = DeterministicCipher(KeyGen.symmetric_from_seed(3))
        encrypted, samples = samples_from_deterministic(skewed_table, cipher, ["Category"])
        outcome = evaluate_attack(
            FrequencyAttack(strategy="rank"), samples, skewed_table, encrypted, trials=300, seed=1
        )
        assert outcome.success_rate > 0.9

    def test_attack_name(self):
        assert FrequencyAttack().name == "frequency-matching"
        assert FrequencyAttack("rank").name == "frequency-rank"


class TestKerckhoffsAttack:
    def test_split_factor_estimation(self):
        attack = KerckhoffsAttack()
        cipher_freqs = Counter({f"c{i}": 4 for i in range(10)})
        plain_freqs = Counter({"a": 8, "b": 4})
        assert attack.estimate_split_factor(cipher_freqs, plain_freqs) == 1
        cipher_freqs = Counter({f"c{i}": 16 for i in range(4)})
        assert attack.estimate_split_factor(cipher_freqs, plain_freqs) == 2

    def test_split_factor_override(self):
        attack = KerckhoffsAttack(assume_split_factor=3)
        assert attack.estimate_split_factor(Counter({"x": 1}), Counter({"p": 1})) == 3

    def test_invalid_override_rejected(self):
        with pytest.raises(ReproError):
            KerckhoffsAttack(assume_split_factor=0)

    def test_bucketing_by_frequency(self):
        buckets = KerckhoffsAttack.bucket_by_frequency(Counter({"a": 2, "b": 2, "c": 5}))
        assert sorted(buckets[2]) == ["a", "b"]
        assert buckets[5] == ["c"]

    def test_candidate_plaintexts_primary_rule(self):
        plain = Counter({"a": 10, "b": 2, "c": 1})
        candidates = KerckhoffsAttack.candidate_plaintexts(4, 2, plain)
        assert set(candidates) == {"b", "c"}

    def test_candidate_plaintexts_fallbacks(self):
        plain = Counter({"a": 10})
        assert KerckhoffsAttack.candidate_plaintexts(12, 2, plain) == ["a"]
        assert KerckhoffsAttack.candidate_plaintexts(1, 2, plain) == ["a"]


class TestAttackAgainstF2:
    @pytest.fixture
    def encrypted_pair(self, skewed_table):
        scheme = F2Scheme(
            key=KeyGen.symmetric_from_seed(8),
            config=F2Config(alpha=0.25, split_factor=2, seed=4),
        )
        return skewed_table, scheme.encrypt(skewed_table)

    def test_samples_only_from_authentic_cells(self, encrypted_pair):
        plaintext, encrypted = encrypted_pair
        samples = samples_from_encrypted(encrypted, plaintext, ["Category"])
        artificial = set(encrypted.artificial_row_indexes())
        assert samples
        assert len(samples) <= encrypted.num_rows - len(artificial)

    def test_f2_defeats_frequency_matching(self, encrypted_pair):
        plaintext, encrypted = encrypted_pair
        samples = samples_from_encrypted(encrypted, plaintext, ["Category"])
        outcome = evaluate_attack(
            FrequencyAttack(), samples, plaintext, encrypted.relation, trials=400, seed=2
        )
        # alpha = 0.25; allow generous sampling slack plus the 1/domain floor.
        assert outcome.success_rate <= 0.45

    def test_f2_defeats_kerckhoffs_adversary(self, encrypted_pair):
        plaintext, encrypted = encrypted_pair
        samples = samples_from_encrypted(encrypted, plaintext, ["Category"])
        outcome = evaluate_attack(
            KerckhoffsAttack(), samples, plaintext, encrypted.relation, trials=400, seed=2
        )
        assert outcome.success_rate <= 0.45

    def test_f2_much_stronger_than_deterministic(self, skewed_table, encrypted_pair):
        plaintext, encrypted = encrypted_pair
        f2_samples = samples_from_encrypted(encrypted, plaintext, ["Category"])
        f2_outcome = evaluate_attack(
            FrequencyAttack(), f2_samples, plaintext, encrypted.relation, trials=400, seed=3
        )
        det_cipher = DeterministicCipher(KeyGen.symmetric_from_seed(3))
        det_relation, det_samples = samples_from_deterministic(
            skewed_table, det_cipher, ["Category"]
        )
        det_outcome = evaluate_attack(
            FrequencyAttack(), det_samples, skewed_table, det_relation, trials=400, seed=3
        )
        assert det_outcome.success_rate - f2_outcome.success_rate > 0.4

    def test_outcome_bookkeeping(self, encrypted_pair):
        plaintext, encrypted = encrypted_pair
        samples = samples_from_encrypted(encrypted, plaintext, ["Category"])
        outcome = evaluate_attack(
            FrequencyAttack(), samples, plaintext, encrypted.relation, trials=100, seed=0
        )
        assert outcome.trials == 100
        assert 0 <= outcome.successes <= 100
        assert outcome.attribute_success_rate("Category") == outcome.success_rate
        assert outcome.satisfies_alpha(1.0)

    def test_evaluate_without_samples_rejected(self, skewed_table):
        with pytest.raises(ReproError):
            evaluate_attack(FrequencyAttack(), [], skewed_table, skewed_table)

    def test_attack_sample_dataclass(self):
        sample = AttackSample(attribute="A", ciphertext_value="c", true_value="p")
        assert sample.attribute == "A"

"""Tests for the from-scratch AES-128 block cipher (FIPS-197 vectors)."""

import pytest

from repro.crypto.aes import Aes128
from repro.exceptions import EncryptionError


class TestFips197Vectors:
    def test_appendix_b_vector(self):
        # FIPS-197 Appendix B: plaintext/key/ciphertext.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert Aes128(key).encrypt_block(plaintext) == expected

    def test_appendix_c_vector(self):
        # FIPS-197 Appendix C.1 AES-128 example vector.
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert Aes128(key).encrypt_block(plaintext) == expected

    def test_decrypt_inverts_encrypt_on_vectors(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert Aes128(key).decrypt_block(ciphertext) == expected


class TestBlockCipherProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_roundtrip_random_blocks(self, seed):
        import random

        rng = random.Random(seed)
        key = bytes(rng.getrandbits(8) for _ in range(16))
        block = bytes(rng.getrandbits(8) for _ in range(16))
        aes = Aes128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_wrong_key_length_rejected(self):
        with pytest.raises(EncryptionError):
            Aes128(b"short")

    def test_wrong_block_length_rejected(self):
        aes = Aes128(bytes(16))
        with pytest.raises(EncryptionError):
            aes.encrypt_block(b"tiny")
        with pytest.raises(EncryptionError):
            aes.decrypt_block(b"tiny")

    def test_ecb_multi_block_roundtrip(self):
        aes = Aes128(bytes(range(16)))
        message = bytes(range(48))
        assert aes.decrypt_ecb(aes.encrypt_ecb(message)) == message

    def test_ecb_rejects_partial_blocks(self):
        aes = Aes128(bytes(range(16)))
        with pytest.raises(EncryptionError):
            aes.encrypt_ecb(b"123")
        with pytest.raises(EncryptionError):
            aes.decrypt_ecb(b"123")

    def test_ecb_equal_blocks_equal_ciphertext(self):
        """The ECB weakness the frequency-analysis attack exploits."""
        aes = Aes128(bytes(range(16)))
        ciphertext = aes.encrypt_ecb(b"A" * 16 + b"A" * 16)
        assert ciphertext[:16] == ciphertext[16:]

    def test_avalanche_effect(self):
        aes = Aes128(bytes(range(16)))
        first = aes.encrypt_block(b"\x00" * 16)
        second = aes.encrypt_block(b"\x00" * 15 + b"\x01")
        differing_bits = sum(bin(a ^ b).count("1") for a, b in zip(first, second))
        assert differing_bits > 30

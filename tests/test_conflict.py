"""Tests for row assembly and Step 3: conflict resolution."""

import pytest

from repro.core.conflict import (
    MasPlan,
    assemble_row_plans,
    count_overlapping_pairs,
    validate_assembly,
)
from repro.core.config import F2Config
from repro.core.ecg import build_equivalence_class_groups
from repro.core.plan import FreshValueFactory, InstanceCell
from repro.core.split_scale import build_ecg_plan
from repro.exceptions import EncryptionError
from repro.fd.mas import find_maximal_attribute_sets
from repro.relational.partition import Partition
from repro.relational.table import Relation


def build_mas_plans(relation: Relation, config: F2Config, factory: FreshValueFactory):
    """Run Steps 1-2 the way the scheme does, returning the per-MAS plans."""
    plans = []
    for index, mas in enumerate(find_maximal_attribute_sets(relation)):
        partition = Partition.build(relation, mas.attributes)
        grouping = build_equivalence_class_groups(partition, config.group_size, factory)
        plan = MasPlan(index=index, mas=mas, grouping=grouping)
        for group in grouping.groups:
            plan.ecg_plans.append(
                build_ecg_plan(
                    group,
                    config.split_factor,
                    keep_pairs_together=config.keep_pairs_together,
                    namespace=f"mas{index}",
                )
            )
        plans.append(plan)
    return plans


@pytest.fixture
def factory() -> FreshValueFactory:
    return FreshValueFactory(seed=3)


class TestAssemblySingleMas:
    def test_every_original_row_represented(self, paper_figure1_table, factory):
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure1_table, config, factory)
        result = assemble_row_plans(paper_figure1_table, plans, factory)
        validate_assembly(result, paper_figure1_table)

    def test_no_conflicts_with_single_mas(self, paper_figure1_table, factory):
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure1_table, config, factory)
        result = assemble_row_plans(paper_figure1_table, plans, factory)
        assert result.conflicting_tuples == 0
        assert result.conflict_rows_added == 0

    def test_rows_of_same_instance_share_cells(self, paper_figure1_table, factory):
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure1_table, config, factory)
        result = assemble_row_plans(paper_figure1_table, plans, factory)
        # Collect the instance cell of attribute A for every original row; rows
        # assigned to the same variant must carry identical specs.
        by_variant = {}
        for plan in result.row_plans:
            if plan.provenance.kind != "original":
                continue
            cell = plan.cells["A"]
            if isinstance(cell, InstanceCell):
                by_variant.setdefault(cell.variant, set()).add(cell.value)
        for values in by_variant.values():
            assert len(values) == 1

    def test_scaling_rows_counted(self, factory):
        # Classes of sizes 1 and 5 in one group force scaling copies.
        relation = Relation(
            ["A", "B"],
            [["a1", "b1"]] * 5 + [["a2", "b2"]],
        )
        config = F2Config(alpha=0.5, split_factor=1)
        plans = build_mas_plans(relation, config, factory)
        result = assemble_row_plans(relation, plans, factory)
        scaling_rows = [p for p in result.row_plans if p.provenance.kind == "scaling"]
        assert len(scaling_rows) == result.scaling_rows_added
        assert result.scaling_rows_added > 0

    def test_scaling_rows_have_fresh_values_outside_mas(self, factory):
        relation = Relation(
            ["A", "B", "C"],
            [["a1", "b1", "c1"], ["a1", "b1", "c2"], ["a2", "b2", "c3"], ["a1", "b1", "c4"]],
        )
        config = F2Config(alpha=0.5, split_factor=1)
        plans = build_mas_plans(relation, config, factory)
        result = assemble_row_plans(relation, plans, factory)
        mas_attributes = set(plans[0].attributes)
        for plan in result.row_plans:
            if plan.provenance.kind != "scaling":
                continue
            for attribute, cell in plan.cells.items():
                if attribute not in mas_attributes:
                    assert type(cell).__name__ == "FreshCell"


class TestAssemblyMultiMas:
    def test_figure3_conflicts_detected_and_resolved(self, paper_figure3_table, factory):
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure3_table, config, factory)
        assert count_overlapping_pairs(plans) == 1
        result = assemble_row_plans(paper_figure3_table, plans, factory)
        validate_assembly(result, paper_figure3_table)
        assert result.conflicting_tuples > 0
        # Each conflicting tuple is replaced by two rows (one extra row each).
        assert result.conflict_rows_added == result.conflicting_tuples

    def test_conflict_rows_cover_schema_between_them(self, paper_figure3_table, factory):
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure3_table, config, factory)
        result = assemble_row_plans(paper_figure3_table, plans, factory)
        schema = set(paper_figure3_table.attributes)
        by_source = {}
        for plan in result.row_plans:
            if plan.provenance.kind == "conflict":
                by_source.setdefault(plan.provenance.source_row, set()).update(
                    plan.provenance.authentic_attributes
                )
        for covered in by_source.values():
            assert covered == schema

    def test_resolution_disabled_keeps_single_row_per_tuple(self, paper_figure3_table, factory):
        config = F2Config(alpha=0.5, resolve_conflicts=False)
        plans = build_mas_plans(paper_figure3_table, config, factory)
        result = assemble_row_plans(
            paper_figure3_table, plans, factory, resolve_conflicts=False
        )
        original_like = [
            p for p in result.row_plans if p.provenance.kind in {"original", "conflict"}
        ]
        assert len(original_like) == paper_figure3_table.num_rows

    def test_conflict_bound_theorem_3_3(self, paper_figure3_table, factory):
        """Rows added by conflict resolution never exceed h * n (Theorem 3.3)."""
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure3_table, config, factory)
        overlapping_pairs = count_overlapping_pairs(plans)
        result = assemble_row_plans(paper_figure3_table, plans, factory)
        assert result.conflict_rows_added <= overlapping_pairs * paper_figure3_table.num_rows


class TestValidation:
    def test_missing_row_detected(self, paper_figure1_table, factory):
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure1_table, config, factory)
        result = assemble_row_plans(paper_figure1_table, plans, factory)
        result.row_plans = [
            plan
            for plan in result.row_plans
            if not (plan.provenance.kind == "original" and plan.provenance.source_row == 0)
        ]
        with pytest.raises(EncryptionError):
            validate_assembly(result, paper_figure1_table)

    def test_missing_cell_detected(self, paper_figure1_table, factory):
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure1_table, config, factory)
        result = assemble_row_plans(paper_figure1_table, plans, factory)
        del result.row_plans[0].cells["A"]
        with pytest.raises(EncryptionError):
            validate_assembly(result, paper_figure1_table)

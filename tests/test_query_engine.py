"""End-to-end tests of the encrypted query engine.

The acceptance property: for random relations and random boolean
predicates, the decrypted remote query result equals the plaintext
relational selection exactly — byte-identical across the python and numpy
backends — and the per-query leakage report confirms the server-side match
sets stayed frequency-homogenised.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import DataOwner, RemoteOwnerSession, ServiceProvider
from repro.backend import available_backends, get_backend
from repro.core.config import F2Config
from repro.exceptions import ProtocolError, QueryError
from repro.query import (
    And,
    Eq,
    In,
    Not,
    Or,
    collect_leaves,
    evaluate_predicate,
    execute_server_expr,
    parse_predicate,
)
from repro.query.server import ServerAnd, ServerNot, ServerOr, TokenLeaf
from repro.relational.table import Relation
from tests.conftest import make_random_table

BACKENDS = [
    name for name, installed in available_backends().items() if installed
]

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def make_owner(seed: int = 42, alpha: float = 0.25) -> DataOwner:
    return DataOwner.from_seed(seed, config=F2Config(alpha=alpha, seed=7))


# ----------------------------------------------------------------------
# Backend mask primitives
# ----------------------------------------------------------------------
class TestMaskPrimitives:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_membership_and_algebra(self, backend_name):
        backend = get_backend(backend_name)
        codes = backend.as_code_array([0, 1, 2, 0, 1, 2, 3])
        mask_a = backend.membership_mask(codes, [0, 3])
        mask_b = backend.membership_mask(codes, [1, 3])
        assert backend.mask_to_rows(mask_a) == [0, 3, 6]
        assert backend.mask_count(mask_a) == 3
        assert backend.mask_to_rows(backend.rows_and([mask_a, mask_b])) == [6]
        assert backend.mask_to_rows(backend.rows_or([mask_a, mask_b])) == [0, 1, 3, 4, 6]
        assert backend.mask_to_rows(backend.rows_not(mask_a, 7)) == [1, 2, 4, 5]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_empty_wanted_and_empty_mask(self, backend_name):
        backend = get_backend(backend_name)
        codes = backend.as_code_array([0, 1, 2])
        mask = backend.membership_mask(codes, [])
        assert backend.mask_to_rows(mask) == []
        assert backend.mask_count(mask) == 0
        assert backend.mask_to_rows(backend.rows_not(mask, 3)) == [0, 1, 2]

    @pytest.mark.skipif("numpy" not in BACKENDS, reason="requires the [perf] extra")
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=5), max_size=40),
        st.lists(st.integers(min_value=0, max_value=5), max_size=4),
        st.lists(st.integers(min_value=0, max_value=5), max_size=4),
    )
    def test_backends_identical_on_random_algebra(self, codes, wanted_a, wanted_b):
        results = []
        for name in ("python", "numpy"):
            backend = get_backend(name)
            array = backend.as_code_array(codes)
            mask_a = backend.membership_mask(array, wanted_a)
            mask_b = backend.membership_mask(array, wanted_b)
            results.append(
                (
                    backend.mask_to_rows(mask_a),
                    backend.mask_count(mask_a),
                    backend.mask_to_rows(backend.rows_and([mask_a, mask_b])),
                    backend.mask_to_rows(backend.rows_or([mask_a, mask_b])),
                    backend.mask_to_rows(backend.rows_not(mask_b, len(codes))),
                )
            )
        assert results[0] == results[1]


# ----------------------------------------------------------------------
# Server-side execution over the coded relation
# ----------------------------------------------------------------------
class TestServerExecution:
    @pytest.fixture
    def coded(self):
        relation = Relation(
            ["A", "B"],
            [["a1", "b1"], ["a2", "b1"], ["a1", "b2"], ["a3", "b2"], ["a1", "b1"]],
        )
        return relation.coded()

    def leaf(self, coded, attribute, values, index=0):
        wanted = [v for v in coded.column(attribute).dictionary if v in values]
        return TokenLeaf(attribute=attribute, token=tuple(wanted), index=index)

    def test_leaf_and_combinators(self, coded):
        a1 = self.leaf(coded, "A", {"a1"}, 0)
        b1 = self.leaf(coded, "B", {"b1"}, 1)
        rows, counts = execute_server_expr(coded, ServerAnd((a1, b1)))
        assert rows == [0, 4]
        assert counts == [3, 3]
        rows, _ = execute_server_expr(coded, ServerOr((a1, b1)))
        assert rows == [0, 1, 2, 4]
        rows, _ = execute_server_expr(coded, ServerNot(a1))
        assert rows == [1, 3]

    def test_counts_in_leaf_index_order(self, coded):
        a1 = self.leaf(coded, "A", {"a1"}, 0)
        b2 = self.leaf(coded, "B", {"b2"}, 1)
        a3 = self.leaf(coded, "A", {"a3"}, 2)
        _, counts = execute_server_expr(coded, ServerOr((a1, ServerAnd((b2, a3)))))
        assert counts == [3, 2, 1]

    def test_duplicate_leaf_index_rejected(self, coded):
        a1 = self.leaf(coded, "A", {"a1"}, 0)
        with pytest.raises(QueryError):
            execute_server_expr(coded, ServerAnd((a1, a1)))

    @pytest.mark.skipif("numpy" not in BACKENDS, reason="requires the [perf] extra")
    def test_backends_identical_on_expression(self):
        relation = make_random_table(5, num_rows=40, num_attributes=3)
        per_backend = []
        for name in ("python", "numpy"):
            coded = relation.coded(name)
            x0 = coded.column("X0").dictionary[0]
            x1 = coded.column("X1").dictionary[0]
            expr = ServerOr(
                (
                    TokenLeaf(attribute="X0", token=(x0,), index=0),
                    ServerNot(TokenLeaf(attribute="X1", token=(x1,), index=1)),
                )
            )
            per_backend.append(execute_server_expr(coded, expr))
        assert per_backend[0] == per_backend[1]


# ----------------------------------------------------------------------
# Owner <-> provider end to end
# ----------------------------------------------------------------------
class TestSelectEndToEnd:
    @pytest.fixture
    def session(self, zipcode_table):
        owner = make_owner()
        provider = ServiceProvider()
        session = RemoteOwnerSession(owner, provider.client)
        session.outsource(zipcode_table)
        return session

    @pytest.mark.parametrize(
        "expression",
        [
            "City = Hoboken",
            "City = Atlantis",
            "Zipcode = '07030' and City = Hoboken",
            "Zipcode in (07030, 07310) or City = JerseyCity",
            "City = Hoboken and Side != N",
            "not (City = Hoboken or City = JerseyCity)",
            "Street = street-3",
            "City = Hoboken and Street = street-1",
            "Zipcode != '07030' and Side = N",
        ],
    )
    def test_select_equals_plaintext_selection(self, session, expression):
        got = session.select(expression)
        want = session.owner.select_plaintext_where(expression)
        assert list(got.rows()) == list(want.rows())

    def test_select_with_report_accounts_leakage(self, session):
        matches, report = session.select_with_report(
            "City = JerseyCity and Zipcode = '07302'"
        )
        assert report.mode == "server"
        assert report.matched_rows >= matches.num_rows  # scaling copies included
        assert report.server_rows == session.owner.encrypted.num_rows
        assert 0.0 < report.revealed_fraction <= 1.0
        assert report.frequency_homogenised
        assert report.consistent
        assert len(report.leaves) == 2
        for leaf in report.leaves:
            assert leaf.token_size > 0
            assert leaf.min_anonymity >= report.required_anonymity

    def test_local_plan_reports_zero_server_exposure(self, session):
        matches, report = session.select_with_report("Street = street-5")
        assert matches.num_rows == 1
        assert report.mode == "local"
        assert report.server_rows == 0 and report.matched_rows == 0
        assert report.leaves == ()
        assert report.revealed_fraction == 0.0
        assert report.frequency_homogenised

    def test_select_after_insert_sees_new_rows(self, session):
        session.insert_rows(
            [["07030", "Hoboken", "street-new-1", "N"],
             ["07302", "JerseyCity", "street-new-2", "S"]]
        )
        expression = "City = Hoboken or Zipcode = '07302'"
        got = session.select(expression)
        want = session.owner.select_plaintext_where(expression)
        assert list(got.rows()) == list(want.rows())

    def test_explain_without_server(self, zipcode_table):
        owner = make_owner()
        provider = ServiceProvider()
        session = RemoteOwnerSession(owner, provider.client)
        owner.outsource(zipcode_table)  # owner state only; nothing shipped
        text = session.explain("City = Hoboken and Street = street-1")
        assert "mode: hybrid" in text

    def test_unknown_table_is_protocol_error(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        provider = ServiceProvider()  # never received anything
        plan = owner.plan_query("City = Hoboken")
        with pytest.raises(ProtocolError):
            provider.client.plan_query("default", plan.server)

    def test_unknown_attribute_is_protocol_error(self, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        provider = ServiceProvider()
        provider.receive(owner.server_view())
        leaf = TokenLeaf(attribute="Nope", token=(), index=0)
        with pytest.raises(ProtocolError):
            provider.answer_plan_query(leaf)

    def test_out_of_range_result_detected(self, session):
        owner = session.owner
        plan = owner.plan_query("City = Hoboken")
        with pytest.raises(QueryError):
            owner.decrypt_plan_result(plan, [10**6])

    def test_stale_provider_detected_not_silently_wrong(self, zipcode_table):
        # The owner inserts locally without pushing; the provider still
        # filters the old ciphertext.  Its reply carries the stored row
        # count, so the desync must raise instead of returning in-bounds
        # indexes of the wrong table as a silently short result.
        owner = make_owner()
        provider = ServiceProvider()
        session = RemoteOwnerSession(owner, provider.client)
        session.outsource(zipcode_table)
        owner.insert_rows([["07030", "Hoboken", "street-stale", "N"]])  # not pushed
        plan = owner.plan_query("City = Hoboken")
        result = provider.answer_plan_query(plan.server)
        with pytest.raises(QueryError, match="out of sync"):
            owner.decrypt_plan_result(plan, result)

    def test_socket_transport_end_to_end(self, zipcode_table):
        from repro.api.protocol import (
            ProtocolClient,
            ProtocolServer,
            SocketProtocolServer,
            SocketTransport,
        )

        with SocketProtocolServer(ProtocolServer()) as sock_server:
            sock_server.serve_in_background()
            owner = make_owner()
            session = RemoteOwnerSession(
                owner, ProtocolClient(SocketTransport(port=sock_server.port))
            )
            session.outsource(zipcode_table)
            expression = "City = Hoboken and (Zipcode = '07030' or Side = S)"
            got, report = session.select_with_report(expression)
            want = owner.select_plaintext_where(expression)
            assert list(got.rows()) == list(want.rows())
            assert report.frequency_homogenised and report.consistent
            session.close()


# ----------------------------------------------------------------------
# The acceptance property
# ----------------------------------------------------------------------
def predicate_strategy(table: Relation):
    """Random predicates over a table's attributes and (mostly) its values."""
    attributes = list(table.attributes)

    def values_for(attribute: str) -> list[str]:
        present = sorted({str(v) for v in table.column(attribute)})
        return present + ["absent-value"]

    leaf = st.one_of(
        st.sampled_from(attributes).flatmap(
            lambda attr: st.sampled_from(values_for(attr)).map(
                lambda value: Eq(attr, value)
            )
        ),
        st.sampled_from(attributes).flatmap(
            lambda attr: st.lists(
                st.sampled_from(values_for(attr)), min_size=1, max_size=3
            ).map(lambda vs: In(attr, tuple(vs)))
        ),
    )
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.builds(
                lambda cs: And(tuple(cs)), st.lists(children, min_size=2, max_size=3)
            ),
            st.builds(
                lambda cs: Or(tuple(cs)), st.lists(children, min_size=2, max_size=3)
            ),
            st.builds(Not, children),
        ),
        max_leaves=5,
    )


class TestSelectionProperty:
    @SLOW
    @given(data=st.data(), table_seed=st.integers(min_value=0, max_value=9))
    def test_remote_select_equals_selection_on_random_tables(self, data, table_seed):
        table = make_random_table(table_seed + 600, num_attributes=4)
        alpha = data.draw(st.sampled_from([0.5, 0.34]))
        owner = DataOwner.from_seed(
            table_seed, config=F2Config(alpha=alpha, seed=table_seed)
        )
        owner.outsource(table)
        view = owner.server_view()

        providers = []
        for backend_name in BACKENDS:
            provider = ServiceProvider(backend=backend_name)
            provider.receive(view)
            providers.append(provider)

        predicate = data.draw(predicate_strategy(table))
        expected_rows = evaluate_predicate(table, predicate)
        expected = table.select_rows(expected_rows)

        plan = owner.plan_query(predicate)
        per_backend = []
        for provider in providers:
            if plan.server is None:
                matches = owner.select_plaintext_where(predicate)
                report = owner.query_leakage_report(plan)
                result_key = None
            else:
                result = provider.answer_plan_query(plan.server)
                matches = owner.decrypt_plan_result(plan, result)
                report = owner.query_leakage_report(plan, result)
                result_key = (result.row_indexes, result.leaf_match_counts)
            # The decrypted remote result IS the plaintext selection.
            assert list(matches.rows()) == list(expected.rows()), str(predicate)
            # ... and the access pattern stayed frequency-homogenised.
            assert report.frequency_homogenised, report.to_dict()
            assert report.consistent, report.to_dict()
            per_backend.append((result_key, [tuple(map(str, r)) for r in matches.rows()]))

        # Byte-identical across backends: same server match sets, same
        # leaf cardinalities, same decrypted textual rows.
        assert all(entry == per_backend[0] for entry in per_backend[1:])

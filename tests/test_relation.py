"""Unit tests for repro.relational.table."""

import pytest

from repro.exceptions import RelationError, SchemaError
from repro.relational.schema import Schema
from repro.relational.table import Relation


@pytest.fixture
def small_relation() -> Relation:
    return Relation(
        ["A", "B", "C"],
        [["a1", "b1", "c1"], ["a1", "b2", "c2"], ["a2", "b1", "c3"]],
        name="small",
    )


class TestConstruction:
    def test_from_rows(self, small_relation):
        assert small_relation.num_rows == 3
        assert small_relation.num_attributes == 3

    def test_from_dicts_infers_schema(self):
        relation = Relation.from_dicts([{"X": 1, "Y": 2}, {"X": 3, "Y": 4}])
        assert relation.attributes == ("X", "Y")
        assert relation.row(1) == (3, 4)

    def test_from_dicts_missing_key_raises(self):
        with pytest.raises(RelationError):
            Relation.from_dicts([{"X": 1}], schema=["X", "Y"])

    def test_from_dicts_empty_without_schema_raises(self):
        with pytest.raises(RelationError):
            Relation.from_dicts([])

    def test_from_columns(self):
        relation = Relation.from_columns({"A": [1, 2], "B": [3, 4]})
        assert relation.row(0) == (1, 3)

    def test_from_columns_inconsistent_lengths(self):
        with pytest.raises(RelationError):
            Relation.from_columns({"A": [1, 2], "B": [3]})

    def test_accepts_schema_object(self):
        relation = Relation(Schema(["A"]), [["x"]])
        assert relation.num_rows == 1

    def test_empty_like_and_copy(self, small_relation):
        empty = small_relation.empty_like()
        assert empty.num_rows == 0 and empty.schema == small_relation.schema
        clone = small_relation.copy()
        clone.append(["a9", "b9", "c9"])
        assert small_relation.num_rows == 3 and clone.num_rows == 4

    def test_repr(self, small_relation):
        assert "rows=3" in repr(small_relation)

    def test_equality(self, small_relation):
        assert small_relation == small_relation.copy()
        assert small_relation != small_relation.project(["A", "B"])


class TestRowAccess:
    def test_append_sequence_and_mapping(self):
        relation = Relation(["A", "B"])
        relation.append(["x", "y"])
        relation.append({"B": "q", "A": "p"})
        assert relation.row(1) == ("p", "q")

    def test_append_wrong_arity_raises(self):
        with pytest.raises(RelationError):
            Relation(["A", "B"]).append(["only-one"])

    def test_append_mapping_missing_attribute_raises(self):
        with pytest.raises(RelationError):
            Relation(["A", "B"]).append({"A": 1})

    def test_row_out_of_range(self, small_relation):
        with pytest.raises(RelationError):
            small_relation.row(99)

    def test_rows_iteration(self, small_relation):
        assert list(small_relation.rows())[0] == ("a1", "b1", "c1")

    def test_rows_iteration_empty(self):
        assert list(Relation(["A"]).rows()) == []

    def test_row_dict(self, small_relation):
        assert small_relation.row_dict(0) == {"A": "a1", "B": "b1", "C": "c1"}

    def test_value_and_set_value(self, small_relation):
        assert small_relation.value(1, "B") == "b2"
        small_relation.set_value(1, "B", "patched")
        assert small_relation.value(1, "B") == "patched"

    def test_set_value_out_of_range(self, small_relation):
        with pytest.raises(RelationError):
            small_relation.set_value(10, "B", "x")

    def test_column_access(self, small_relation):
        assert small_relation.column("A") == ["a1", "a1", "a2"]


class TestRelationalOperations:
    def test_project_row(self, small_relation):
        assert small_relation.project_row(0, ["C", "A"]) == ("a1", "c1")

    def test_project(self, small_relation):
        projected = small_relation.project(["C", "A"])
        assert projected.attributes == ("A", "C")
        assert projected.num_rows == 3

    def test_project_empty_raises(self, small_relation):
        with pytest.raises(SchemaError):
            small_relation.project([])

    def test_select_rows(self, small_relation):
        selected = small_relation.select_rows([2, 0])
        assert selected.row(0) == ("a2", "b1", "c3")
        assert selected.num_rows == 2

    def test_value_frequencies(self, small_relation):
        frequencies = small_relation.value_frequencies(["A"])
        assert frequencies[("a1",)] == 2
        assert frequencies[("a2",)] == 1

    def test_value_frequencies_multi_attribute(self, small_relation):
        frequencies = small_relation.value_frequencies(["A", "B"])
        assert frequencies[("a1", "b1")] == 1

    def test_distinct_values(self, small_relation):
        assert small_relation.distinct_values("B") == {"b1", "b2"}

    def test_domain_sizes(self, small_relation):
        assert small_relation.domain_sizes() == {"A": 2, "B": 2, "C": 3}

    def test_concat(self, small_relation):
        merged = small_relation.concat(small_relation.copy())
        assert merged.num_rows == 6
        assert small_relation.num_rows == 3

    def test_concat_schema_mismatch(self, small_relation):
        with pytest.raises(RelationError):
            small_relation.concat(Relation(["X"], [["v"]]))

    def test_approximate_size_is_positive(self, small_relation):
        assert small_relation.approximate_size_bytes() > 0

    def test_to_dicts_roundtrip(self, small_relation):
        rebuilt = Relation.from_dicts(small_relation.to_dicts())
        assert rebuilt == small_relation

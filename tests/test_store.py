"""Tests of the repro.store package: engines, crash recovery, migration."""

import json
import os

import pytest

from repro.api.delta import apply_view_delta, compute_view_delta
from repro.api.protocol import (
    InsertDelta,
    LoadSnapshot,
    LoopbackTransport,
    OutsourceRequest,
    PlanQueryRequest,
    ProtocolClient,
    ProtocolServer,
    QueryRequest,
    SaveSnapshot,
)
from repro.backend import get_backend, numpy_available
from repro.exceptions import ConfigurationError, ProtocolError, StoreError
from repro.query.server import ServerOr, TokenLeaf
from repro.relational.table import Relation
from repro.store import (
    MemoryTableStore,
    SegmentTableStore,
    STORE_SUFFIX,
    TokenBitsetCache,
    is_segment_store,
    list_generations,
    migrate_storage_dir,
)
from repro.store.manifest import CURRENT_NAME, manifest_name
from repro.wire import WIRE_BINARY, encode_relation

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


def small_relation(name: str = "orders") -> Relation:
    return Relation.from_columns(
        {
            "city": ["hoboken", "nyc", "hoboken", "jersey"],
            "zip": ["07030", "10001", "07030", "07302"],
        },
        name=name,
    )


def grown_relation(name: str = "orders") -> Relation:
    base = small_relation(name)
    return Relation.from_columns(
        {
            "city": list(base.column("city")) + ["nyc", "hoboken"],
            "zip": list(base.column("zip")) + ["10002", "07030"],
        },
        name=name,
    )


# ----------------------------------------------------------------------
# TokenBitsetCache
# ----------------------------------------------------------------------
class TestTokenBitsetCache:
    def test_hit_miss_counters(self):
        cache = TokenBitsetCache()
        key = cache.key("city", ("hoboken",))
        assert cache.get_rows(key) is None
        cache.put_rows(key, [0, 2])
        assert cache.get_rows(key) == (0, 2)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = TokenBitsetCache(max_entries=2)
        for index in range(3):
            cache.put_rows(("a", (index,)), [index])
        assert cache.get_rows(("a", (0,))) is None  # evicted
        assert cache.get_rows(("a", (2,))) == (2,)

    def test_invalidate_clears_everything(self):
        cache = TokenBitsetCache()
        cache.put_rows(("a", (1,)), [1])
        cache.put_mask(("a", (1,)), 0b10)
        cache.invalidate()
        assert cache.entries == 0
        assert cache.stats()["invalidations"] == 1
        cache.invalidate()  # empty: not counted again
        assert cache.stats()["invalidations"] == 1


# ----------------------------------------------------------------------
# Segment engine
# ----------------------------------------------------------------------
class TestSegmentTableStore:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_replace_roundtrip_and_reopen(self, tmp_path, backend):
        relation = small_relation()
        store = SegmentTableStore(tmp_path / f"t{STORE_SUFFIX}", get_backend(backend), create=True)
        store.replace(relation)
        assert store.attributes == ("city", "zip")
        assert store.num_rows == 4
        assert store.relation() == relation
        assert store.verify() is True
        store.close()
        reopened = SegmentTableStore(tmp_path / f"t{STORE_SUFFIX}", get_backend(backend))
        assert reopened.relation() == relation
        reopened.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_query_parity_with_coded_relation(self, tmp_path, backend):
        relation = small_relation()
        resolved = get_backend(backend)
        store = SegmentTableStore(tmp_path / f"t{STORE_SUFFIX}", resolved, create=True)
        store.replace(relation)
        coded = relation.coded(resolved)
        for token in [("hoboken",), ("nyc", "jersey"), ("nowhere",), ()]:
            assert store.rows_matching("city", token) == coded.rows_matching("city", token)
            assert resolved.mask_to_rows(store.match_mask("city", token)) == (
                resolved.mask_to_rows(coded.match_mask("city", token))
            )
        store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_apply_delta_matches_apply_view_delta(self, tmp_path, backend):
        base, new = small_relation(), grown_relation()
        store = SegmentTableStore(tmp_path / f"t{STORE_SUFFIX}", get_backend(backend), create=True)
        store.replace(base)
        delta = compute_view_delta(base, new)
        assert store.apply_delta(delta) == new.num_rows
        assert store.relation() == apply_view_delta(base, delta)
        assert store.verify() is True
        store.close()

    def test_stale_delta_is_rejected_with_mismatch_code(self, tmp_path):
        base, new = small_relation(), grown_relation()
        store = SegmentTableStore(tmp_path / f"t{STORE_SUFFIX}", get_backend("python"), create=True)
        store.replace(base)
        delta = compute_view_delta(base, new)
        store.apply_delta(delta)
        with pytest.raises(ProtocolError) as excinfo:
            store.apply_delta(delta)  # base moved on: digest no longer matches
        assert excinfo.value.code == "DELTA_MISMATCH"
        store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dictionary_growth_across_code_widths(self, tmp_path, backend):
        # The first segment is written with 1-byte codes (< 256 distinct
        # values); deltas push the dictionary past 256 so later segments
        # use 2-byte codes.  Tokens from both ranges must match exactly —
        # a wide code cast into the narrow mmap'd array would wrap around.
        store = SegmentTableStore(tmp_path / f"g{STORE_SUFFIX}", get_backend(backend), create=True)
        current = Relation.from_columns({"v": [f"v{i}" for i in range(200)]}, name="g")
        store.replace(current)
        for start in (200, 400):
            grown = Relation.from_columns(
                {"v": list(current.column("v")) + [f"v{i}" for i in range(start, start + 200)]},
                name="g",
            )
            store.apply_delta(compute_view_delta(current, grown))
            current = grown
        assert store.num_rows == 600
        assert store.rows_matching("v", ("v599",)) == [599]
        assert store.rows_matching("v", ("v10",)) == [10]
        # v300 appears once, in the second segment, with a code >= 256 % 256
        # colliding against an early narrow code if wrapped.
        assert store.rows_matching("v", ("v300",)) == [300]
        assert store.relation() == current
        store.close()
        reopened = SegmentTableStore(tmp_path / f"g{STORE_SUFFIX}", get_backend(backend))
        assert reopened.rows_matching("v", ("v599",)) == [599]
        assert reopened.verify() is True
        reopened.close()

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(StoreError, match="not a segment store"):
            SegmentTableStore(tmp_path / "absent.f2s", get_backend("python"))

    def test_single_attribute_query_decodes_only_that_column(self, tmp_path, monkeypatch):
        """Column pruning pin (ROADMAP open item 2): a one-attribute query on
        a reopened store must decode exactly one dictionary and materialise
        exactly one code column, however wide the schema is."""
        relation = Relation.from_columns(
            {
                "city": ["hoboken", "nyc", "hoboken", "jersey"],
                "zip": ["07030", "10001", "07030", "07302"],
                "side": ["E", "W", "E", "N"],
            },
            name="orders",
        )
        backend = get_backend("python")
        store = SegmentTableStore(tmp_path / f"t{STORE_SUFFIX}", backend, create=True)
        store.replace(relation)
        store.close()

        import repro.store.segment as segment_module

        dictionary_decodes = []
        real_decode = segment_module.decode_cell_run

        def counting_decode(data, values):
            dictionary_decodes.append(values)
            return real_decode(data, values)

        monkeypatch.setattr(segment_module, "decode_cell_run", counting_decode)

        column_decodes = []
        real_from_code_bytes = type(backend).from_code_bytes

        def counting_from_code_bytes(self, data, width, count):
            column_decodes.append(count)
            return real_from_code_bytes(self, data, width, count)

        monkeypatch.setattr(type(backend), "from_code_bytes", counting_from_code_bytes)

        reopened = SegmentTableStore(tmp_path / f"t{STORE_SUFFIX}", backend)
        assert dictionary_decodes == []  # opening only skims the manifest
        assert column_decodes == []
        assert reopened.rows_matching("zip", ("07030",)) == [0, 2]
        assert len(dictionary_decodes) == 1  # only the zip dictionary
        assert len(column_decodes) == 1  # only the zip code column
        # A second query on the same attribute hits the lazy caches.
        assert reopened.rows_matching("zip", ("10001",)) == [1]
        assert len(dictionary_decodes) == 1
        assert len(column_decodes) == 1
        reopened.close()

    def test_save_and_reload(self, tmp_path):
        directory = tmp_path / f"t{STORE_SUFFIX}"
        store = SegmentTableStore(directory, get_backend("python"), create=True)
        store.replace(small_relation())
        assert store.save() == directory
        assert store.reload() == 4
        assert store.relation() == small_relation()
        store.close()


# ----------------------------------------------------------------------
# Crash consistency
# ----------------------------------------------------------------------
def build_two_generation_store(directory):
    """A store with gen 1 (base) and gen 2 (base + delta rows) committed."""
    base, new = small_relation(), grown_relation()
    store = SegmentTableStore(directory, get_backend("python"), create=True)
    store.replace(base)
    store.apply_delta(compute_view_delta(base, new))
    store.close()
    return base, new


class TestCrashConsistency:
    def test_torn_tail_is_truncated_and_committed_data_served(self, tmp_path):
        directory = tmp_path / f"t{STORE_SUFFIX}"
        _, new = build_two_generation_store(directory)
        # A crash mid-append leaves bytes beyond every committed length.
        for name in os.listdir(directory):
            if name.endswith((".seg", ".blob")):
                with open(directory / name, "ab") as handle:
                    handle.write(b"\xde\xad\xbe\xef torn tail")
        store = SegmentTableStore(directory, get_backend("python"))
        assert store.relation() == new
        assert store.verify() is True  # tails were truncated at recovery
        store.close()

    def test_truncated_segment_falls_back_a_generation(self, tmp_path):
        directory = tmp_path / f"t{STORE_SUFFIX}"
        base, _ = build_two_generation_store(directory)
        # Kill the delta's literal segment (gen 2's new file) mid-write.
        os.truncate(directory / "seg-000002.seg", 3)
        with pytest.warns(RuntimeWarning, match="falling back to committed generation 1"):
            store = SegmentTableStore(directory, get_backend("python"))
        assert store.generation == 1
        assert store.relation() == base
        store.close()

    def test_corrupt_manifest_falls_back_a_generation(self, tmp_path):
        directory = tmp_path / f"t{STORE_SUFFIX}"
        base, _ = build_two_generation_store(directory)
        (directory / manifest_name(2)).write_bytes(b"{ not json")
        with pytest.warns(RuntimeWarning, match="falling back to committed generation 1"):
            store = SegmentTableStore(directory, get_backend("python"))
        assert store.relation() == base
        store.close()

    def test_dangling_current_pointer_recovers_newest(self, tmp_path):
        directory = tmp_path / f"t{STORE_SUFFIX}"
        _, new = build_two_generation_store(directory)
        (directory / CURRENT_NAME).write_text("MANIFEST-999999.json\n", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="falling back to committed generation 2"):
            store = SegmentTableStore(directory, get_backend("python"))
        assert store.relation() == new
        store.close()

    def test_unrecoverable_store_raises(self, tmp_path):
        directory = tmp_path / f"t{STORE_SUFFIX}"
        build_two_generation_store(directory)
        for name in list(os.listdir(directory)):
            if name.startswith("MANIFEST-"):
                (directory / name).write_bytes(b"garbage")
        with pytest.raises(StoreError, match="no usable manifest generation"):
            SegmentTableStore(directory, get_backend("python"))

    def test_server_skips_corrupt_store_but_serves_the_rest(self, tmp_path):
        good = SegmentTableStore(tmp_path / f"good{STORE_SUFFIX}", get_backend("python"), create=True)
        good.replace(small_relation())
        good.close()
        bad_dir = tmp_path / f"bad{STORE_SUFFIX}"
        build_two_generation_store(bad_dir)
        for name in list(os.listdir(bad_dir)):
            if name.startswith("MANIFEST-"):
                (bad_dir / name).write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning, match="skipping corrupt table store"):
            server = ProtocolServer(
                storage_dir=tmp_path, storage_engine="segment", backend="python"
            )
        assert server.table_ids() == ["good"]
        assert server.store("good") == small_relation()

    def test_orphan_files_are_ignored_at_open(self, tmp_path):
        directory = tmp_path / f"t{STORE_SUFFIX}"
        _, new = build_two_generation_store(directory)
        # A crash after writing data files but before the manifest commit
        # leaves unreferenced files; they must not confuse recovery.
        (directory / "seg-000009.seg").write_bytes(b"F2SG\x01orphan")
        (directory / "dict-000009-000.blob").write_bytes(b"orphan")
        store = SegmentTableStore(directory, get_backend("python"))
        assert store.relation() == new
        store.close()


# ----------------------------------------------------------------------
# The protocol server over both engines
# ----------------------------------------------------------------------
def make_client(server: ProtocolServer) -> ProtocolClient:
    return ProtocolClient(LoopbackTransport(server))


class TestServerEngines:
    def test_segment_engine_requires_storage_dir(self):
        with pytest.raises(ConfigurationError, match="needs a storage_dir"):
            ProtocolServer(storage_engine="segment")

    def test_unknown_engine_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown storage engine"):
            ProtocolServer(storage_dir=tmp_path, storage_engine="parquet")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cached_query_sees_delta_inserts(self, tmp_path, backend):
        # The hot-token cache must be invalidated by the insert: the same
        # query before and after a delta returns the updated rows, and the
        # two backends agree exactly.
        base, new = small_relation(), grown_relation()
        server = ProtocolServer(
            storage_dir=tmp_path, storage_engine="segment", backend=backend
        )
        client = make_client(server)
        client.call(OutsourceRequest(table_id="orders", relation=base))
        query = QueryRequest(table_id="orders", attribute="city", token=("hoboken",))
        assert client.call(query).row_indexes == (0, 2)
        assert client.call(query).row_indexes == (0, 2)  # cache hit
        store = server.table_store("orders")
        assert store.cache_stats()["hits"] >= 1
        client.call(InsertDelta(table_id="orders", delta=compute_view_delta(base, new)))
        assert client.call(query).row_indexes == (0, 2, 5)

    @pytest.mark.parametrize("engine", ["snapshot", "segment"])
    def test_restart_resumes_serving(self, tmp_path, engine):
        relation = small_relation()
        server = ProtocolServer(storage_dir=tmp_path, storage_engine=engine, backend="python")
        make_client(server).call(OutsourceRequest(table_id="orders", relation=relation))
        revived = ProtocolServer(storage_dir=tmp_path, storage_engine=engine, backend="python")
        assert revived.table_ids() == ["orders"]
        assert revived.store("orders") == relation
        result = make_client(revived).call(
            QueryRequest(table_id="orders", attribute="city", token=("nyc",))
        )
        assert result.row_indexes == (1,)

    def test_engines_agree_byte_for_byte(self, tmp_path):
        # Decrypt-relevant equality: both engines return the same relation
        # (and therefore identical wire bytes) after the same traffic.
        base, new = small_relation(), grown_relation()
        delta = compute_view_delta(base, new)
        relations = {}
        for engine in ("snapshot", "segment"):
            server = ProtocolServer(
                storage_dir=tmp_path / engine, storage_engine=engine, backend="python"
            )
            client = make_client(server)
            client.call(OutsourceRequest(table_id="orders", relation=base))
            client.call(InsertDelta(table_id="orders", delta=delta))
            relations[engine] = server.store("orders")
        assert relations["snapshot"] == relations["segment"]
        assert encode_relation(relations["snapshot"], WIRE_BINARY) == encode_relation(
            relations["segment"], WIRE_BINARY
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_plan_query_runs_against_the_store(self, tmp_path, backend):
        server = ProtocolServer(
            storage_dir=tmp_path, storage_engine="segment", backend=backend
        )
        client = make_client(server)
        client.call(OutsourceRequest(table_id="orders", relation=small_relation()))
        expr = ServerOr(
            children=(
                TokenLeaf(index=0, attribute="city", token=("nyc",)),
                TokenLeaf(index=1, attribute="zip", token=("07030",)),
            )
        )
        result = client.call(PlanQueryRequest(table_id="orders", expr=expr))
        assert result.row_indexes == (0, 1, 2)
        assert result.leaf_match_counts == (1, 2)
        assert result.num_rows == 4

    def test_save_and_load_snapshot_on_segment_engine(self, tmp_path):
        server = ProtocolServer(storage_dir=tmp_path, storage_engine="segment", backend="python")
        client = make_client(server)
        client.call(OutsourceRequest(table_id="orders", relation=small_relation()))
        ack = client.call(SaveSnapshot(table_id="orders"))
        assert ack.fields["path"].endswith(f"orders{STORE_SUFFIX}")
        ack = client.call(LoadSnapshot(table_id="orders"))
        assert ack.fields["num_rows"] == 4
        with pytest.raises(ProtocolError, match="no snapshot for table"):
            client.call(LoadSnapshot(table_id="absent"))

    def test_segment_server_loads_tenant_subdirectories(self, tmp_path):
        inv = Relation.from_columns({"sku": ["a", "b"]}, name="inv")
        tenant_store = SegmentTableStore(
            tmp_path / "acme" / f"inv{STORE_SUFFIX}", get_backend("python"), create=True
        )
        tenant_store.replace(inv)
        tenant_store.close()
        server = ProtocolServer(storage_dir=tmp_path, storage_engine="segment", backend="python")
        assert server.table_ids(None) == ["acme/inv"]
        assert server.store("inv", tenant_id="acme") == inv


# ----------------------------------------------------------------------
# Lazy snapshot loading
# ----------------------------------------------------------------------
class TestLazySnapshotLoading:
    def test_restart_skims_without_decoding(self, tmp_path, monkeypatch):
        relation = small_relation()
        server = ProtocolServer(storage_dir=tmp_path, backend="python")
        make_client(server).call(OutsourceRequest(table_id="orders", relation=relation))

        import repro.store.memory as memory_module

        calls = []
        real_decode = memory_module.decode_relation

        def counting_decode(data):
            calls.append(len(data))
            return real_decode(data)

        monkeypatch.setattr(memory_module, "decode_relation", counting_decode)
        revived = ProtocolServer(storage_dir=tmp_path, backend="python")
        assert calls == []  # construction only skims
        store = revived.table_store("orders")
        assert isinstance(store, MemoryTableStore)
        assert not store.loaded
        assert store.attributes == ("city", "zip")
        assert store.num_rows == 4
        result = make_client(revived).call(
            QueryRequest(table_id="orders", attribute="city", token=("nyc",))
        )
        assert result.row_indexes == (1,)
        assert len(calls) == 1  # the first touch decoded, exactly once
        assert store.loaded

    def test_corrupt_snapshot_still_warns_at_construction(self, tmp_path):
        relation = small_relation()
        server = ProtocolServer(storage_dir=tmp_path, backend="python")
        make_client(server).call(OutsourceRequest(table_id="orders", relation=relation))
        snapshot = tmp_path / "orders.f2t"
        snapshot.write_bytes(snapshot.read_bytes()[:-10])  # torn tail
        with pytest.warns(RuntimeWarning, match="corrupt snapshot"):
            revived = ProtocolServer(storage_dir=tmp_path, backend="python")
        assert revived.table_ids() == []


# ----------------------------------------------------------------------
# Migration
# ----------------------------------------------------------------------
class TestMigrate:
    def seed_snapshot_dir(self, tmp_path):
        orders, inv = small_relation("orders"), Relation.from_columns(
            {"sku": ["a", "b", "a"]}, name="inv"
        )
        server = ProtocolServer(storage_dir=tmp_path, backend="python")
        make_client(server).call(OutsourceRequest(table_id="orders", relation=orders))
        (tmp_path / "acme").mkdir()
        (tmp_path / "acme" / "inv.f2t").write_bytes(
            encode_relation(inv, WIRE_BINARY, get_backend("python"))
        )
        return orders, inv

    def test_migrate_roundtrip_is_byte_identical(self, tmp_path):
        orders, inv = self.seed_snapshot_dir(tmp_path)
        records = migrate_storage_dir(tmp_path, backend="python")
        assert [(r["tenant"], r["table"], r["rows"]) for r in records] == [
            ("", "orders", 4),
            ("acme", "inv", 3),
        ]
        for record, original, snapshot in [
            (records[0], orders, tmp_path / "orders.f2t"),
            (records[1], inv, tmp_path / "acme" / "inv.f2t"),
        ]:
            store = SegmentTableStore(record["store"], get_backend("python"))
            migrated = store.relation()
            assert migrated == original
            # Byte-identical round trip: re-encoding the migrated table
            # reproduces the snapshot file exactly.
            assert (
                encode_relation(migrated, WIRE_BINARY, get_backend("python"))
                == snapshot.read_bytes()
            )
            store.close()

    def test_migrated_dir_serves_under_the_segment_engine(self, tmp_path):
        orders, inv = self.seed_snapshot_dir(tmp_path)
        migrate_storage_dir(tmp_path, backend="python", remove_snapshots=True)
        assert not (tmp_path / "orders.f2t").exists()
        server = ProtocolServer(storage_dir=tmp_path, storage_engine="segment", backend="python")
        assert server.store("orders") == orders
        assert server.store("inv", tenant_id="acme") == inv

    def test_migrate_skips_corrupt_snapshots(self, tmp_path):
        self.seed_snapshot_dir(tmp_path)
        (tmp_path / "bad.f2t").write_bytes(b"F2WB definitely not a frame")
        with pytest.warns(RuntimeWarning, match="skipping corrupt snapshot"):
            records = migrate_storage_dir(tmp_path, backend="python")
        assert {r["table"] for r in records} == {"orders", "inv"}

    def test_cli_store_migrate(self, tmp_path, capsys):
        from repro.cli import main

        self.seed_snapshot_dir(tmp_path)
        assert main(["store", "migrate", "--storage", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "migrated 2 table(s)" in out
        assert is_segment_store(tmp_path / f"orders{STORE_SUFFIX}")
        assert is_segment_store(tmp_path / "acme" / f"inv{STORE_SUFFIX}")

    def test_cli_store_migrate_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["store", "migrate", "--storage", str(tmp_path / "absent")]) == 3
        assert "does not exist" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Memory store specifics
# ----------------------------------------------------------------------
class TestMemoryTableStore:
    def test_empty_store_raises(self):
        store = MemoryTableStore(get_backend("python"))
        with pytest.raises(StoreError, match="no table yet"):
            store.relation()

    def test_apply_delta_updates_and_bumps_version(self):
        base, new = small_relation(), grown_relation()
        store = MemoryTableStore(get_backend("python"))
        store.replace(base)
        version = store.version
        assert store.apply_delta(compute_view_delta(base, new)) == new.num_rows
        assert store.relation() == new
        assert store.version > version

    def test_generation_pruning_keeps_directory_bounded(self, tmp_path):
        directory = tmp_path / f"t{STORE_SUFFIX}"
        store = SegmentTableStore(directory, get_backend("python"), create=True)
        current = small_relation()
        store.replace(current)
        for extra in range(5):
            grown = Relation.from_columns(
                {
                    "city": list(current.column("city")) + [f"city{extra}"],
                    "zip": list(current.column("zip")) + [f"{extra:05d}"],
                },
                name="orders",
            )
            store.apply_delta(compute_view_delta(current, grown))
            current = grown
        store.close()
        assert len(list_generations(directory)) == 2  # KEEP_GENERATIONS
        reopened = SegmentTableStore(directory, get_backend("python"))
        assert reopened.relation() == current
        assert reopened.verify() is True
        reopened.close()

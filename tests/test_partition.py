"""Unit tests for partitions and equivalence classes (Definition 3.3)."""

import pytest

from repro.exceptions import RelationError
from repro.relational.partition import EquivalenceClass, Partition, StrippedPartition
from repro.relational.table import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation(
        ["A", "B", "C"],
        [
            ["a1", "b1", "c1"],
            ["a1", "b1", "c2"],
            ["a2", "b1", "c3"],
            ["a2", "b2", "c4"],
            ["a1", "b1", "c5"],
        ],
        name="partition-test",
    )


class TestPartitionBuild:
    def test_single_attribute_partition(self, relation):
        partition = Partition.build(relation, ["A"])
        assert len(partition) == 2
        sizes = sorted(ec.size for ec in partition)
        assert sizes == [2, 3]

    def test_multi_attribute_partition(self, relation):
        partition = Partition.build(relation, ["A", "B"])
        assert len(partition) == 3

    def test_partition_covers_all_rows(self, relation):
        partition = Partition.build(relation, ["B"])
        assert sum(ec.size for ec in partition) == relation.num_rows

    def test_empty_attribute_set_raises(self, relation):
        with pytest.raises(RelationError):
            Partition.build(relation, [])

    def test_class_of_row(self, relation):
        partition = Partition.build(relation, ["A"])
        assert 0 in partition.class_of_row(1).rows

    def test_class_of_row_unknown(self, relation):
        partition = Partition.build(relation, ["A"])
        with pytest.raises(RelationError):
            partition.class_of_row(99)

    def test_non_singleton_classes(self, relation):
        partition = Partition.build(relation, ["A", "B", "C"])
        assert partition.non_singleton_classes() == []
        partition = Partition.build(relation, ["A", "B"])
        assert len(partition.non_singleton_classes()) == 1

    def test_has_duplicates(self, relation):
        assert Partition.build(relation, ["A"]).has_duplicates()
        assert not Partition.build(relation, ["C"]).has_duplicates()

    def test_error_count_zero_for_key(self, relation):
        assert Partition.build(relation, ["C"]).error_count() == 0
        assert Partition.build(relation, ["A"]).error_count() == 3

    def test_average_class_size(self, relation):
        assert Partition.build(relation, ["C"]).average_class_size() == 1.0

    def test_repr(self, relation):
        assert "classes" in repr(Partition.build(relation, ["A"]))


class TestEquivalenceClass:
    def test_representative_matches_rows(self, relation):
        partition = Partition.build(relation, ["A", "B"])
        for ec in partition:
            for row in ec.rows:
                assert relation.project_row(row, ["A", "B"]) == ec.representative

    def test_value_of(self, relation):
        ec = Partition.build(relation, ["A", "B"]).class_of_row(0)
        assert ec.value_of("A") == "a1"
        with pytest.raises(RelationError):
            ec.value_of("C")

    def test_collision_detection(self):
        first = EquivalenceClass(("A", "B"), ("a1", "b1"), (0,))
        second = EquivalenceClass(("A", "B"), ("a2", "b1"), (1,))
        third = EquivalenceClass(("A", "B"), ("a2", "b2"), (2,))
        assert first.collides_with(second)
        assert not first.collides_with(third)

    def test_collision_requires_same_attributes(self):
        first = EquivalenceClass(("A",), ("a1",), (0,))
        second = EquivalenceClass(("B",), ("a1",), (1,))
        with pytest.raises(RelationError):
            first.collides_with(second)

    def test_len(self):
        assert len(EquivalenceClass(("A",), ("a1",), (0, 3, 5))) == 3


class TestRefinementAndProduct:
    def test_refines_when_fd_holds(self, relation):
        # C is a key, so C -> B holds and pi_C refines pi_B; a multi-attribute
        # partition always refines the partitions of its subsets.
        assert Partition.build(relation, ["C"]).refines(Partition.build(relation, ["B"]))
        assert Partition.build(relation, ["A", "B"]).refines(Partition.build(relation, ["B"]))

    def test_does_not_refine_when_fd_fails(self, relation):
        # B -> A fails (b1 maps to a1 and a2), A -> B fails (a2 maps to b1, b2).
        assert not Partition.build(relation, ["B"]).refines(Partition.build(relation, ["A"]))
        assert not Partition.build(relation, ["A"]).refines(Partition.build(relation, ["B"]))

    def test_refines_requires_same_relation_size(self, relation):
        other = Relation(["A"], [["x"]])
        with pytest.raises(RelationError):
            Partition.build(relation, ["A"]).refines(Partition.build(other, ["A"]))

    def test_product_equals_direct_partition(self, relation):
        product = Partition.build(relation, ["A"]).product(Partition.build(relation, ["B"]))
        direct = Partition.build(relation, ["A", "B"])
        product_groups = sorted(tuple(ec.rows) for ec in product)
        direct_groups = sorted(tuple(ec.rows) for ec in direct)
        assert product_groups == direct_groups

    def test_product_representatives_are_consistent(self, relation):
        product = Partition.build(relation, ["A"]).product(Partition.build(relation, ["C"]))
        for ec in product:
            assert len(ec.representative) == 2

    def test_product_requires_same_relation_size(self, relation):
        other = Relation(["A"], [["x"]])
        with pytest.raises(RelationError):
            Partition.build(relation, ["A"]).product(Partition.build(other, ["A"]))


class TestStrippedPartition:
    def test_strips_singletons(self, relation):
        stripped = StrippedPartition.build(relation, ["A", "B"])
        assert all(len(group) > 1 for group in stripped.groups)

    def test_error_measure(self, relation):
        stripped = StrippedPartition.build(relation, ["A"])
        full = Partition.build(relation, ["A"])
        assert stripped.error == full.error_count()

    def test_error_zero_for_key(self, relation):
        assert StrippedPartition.build(relation, ["C"]).error == 0

    def test_product_matches_direct(self, relation):
        product = StrippedPartition.build(relation, ["A"]).product(
            StrippedPartition.build(relation, ["B"])
        )
        direct = StrippedPartition.build(relation, ["A", "B"])
        assert sorted(map(tuple, product.groups)) == sorted(map(tuple, direct.groups))

    def test_product_requires_same_relation(self, relation):
        other = Relation(["A"], [["x"], ["x"]])
        with pytest.raises(RelationError):
            StrippedPartition.build(relation, ["A"]).product(StrippedPartition.build(other, ["A"]))

"""Concurrent multi-tenant stress test over the real socket transport.

N threads x M tenants interleave outsources, delta inserts, discoveries,
and queries against one socket server.  Asserts per-tenant isolation: every
tenant's final decrypted state equals its own plaintext (no cross-tenant
rows), tenants cannot see each other's tables, and no request errs.
"""

import threading

from repro.api import (
    DataOwner,
    ProtocolClient,
    ProtocolServer,
    RemoteOwnerSession,
    SocketProtocolServer,
    SocketTransport,
    TenantRegistry,
)
from repro.api.auth import ErrorCode
from repro.core.config import F2Config
from repro.exceptions import ProtocolError
from repro.relational.table import Relation

TENANTS = ("tenant-a", "tenant-b", "tenant-c")
ROUNDS = 4


def tenant_table(tag: str, size: int = 30) -> Relation:
    """A small per-tenant table whose every value is branded with the
    tenant tag, so any cross-tenant leak is immediately visible."""
    import random

    rng = random.Random(hash(tag) % 100000)
    zipcodes = [f"{tag}-zip{index}" for index in range(3)]
    rows = []
    for index in range(size):
        zipcode = rng.choice(zipcodes)
        rows.append([zipcode, f"{tag}-city-{zipcode[-1]}", f"{tag}-street-{index}"])
    return Relation(["Zipcode", "City", "Street"], rows, name=tag)


def incremental_rows(tag: str, owner: DataOwner, round_index: int):
    """Rows reusing an existing (Zipcode, City) pair with fresh streets, so
    inserts stay on the incremental/delta path."""
    plaintext = owner.plaintext
    zipcode = plaintext.value(0, "Zipcode")
    city = plaintext.value(0, "City")
    return [
        [zipcode, city, f"{tag}-street-new-{round_index}-{offset}"]
        for offset in range(2)
    ]


class TestMultiTenantStress:
    def test_interleaved_tenants_stay_isolated(self):
        registry = TenantRegistry()
        credentials = {tag: registry.mint(tag, "owner") for tag in TENANTS}
        analyst_creds = {tag: registry.mint(tag, "analyst") for tag in TENANTS}
        server = ProtocolServer(tenants=registry)
        errors: list[BaseException] = []
        owners: dict[str, DataOwner] = {}
        results: dict[str, list] = {}

        with SocketProtocolServer(server) as sock_server:
            sock_server.serve_in_background()
            port = sock_server.port

            def analyst_worker(tag: str, barrier: threading.Barrier):
                try:
                    barrier.wait(timeout=30)
                    client = ProtocolClient(SocketTransport(port=port))
                    client.authenticate(analyst_creds[tag])
                    for _ in range(ROUNDS):
                        # Concurrent read-only discovery on the tenant's own
                        # table (whatever version is current) ...
                        client.discover("default", max_lhs_size=2)
                        # ... while the other tenants' tables stay invisible.
                        other = TENANTS[(TENANTS.index(tag) + 1) % len(TENANTS)]
                        try:
                            client.discover(f"{other}-table")
                        except ProtocolError as exc:
                            assert exc.code == ErrorCode.UNKNOWN_TABLE.value
                        else:  # pragma: no cover - failure path
                            raise AssertionError("cross-tenant table visible")
                    client.close()
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            # Analysts start once every tenant's first outsource has landed
            # (they query "default", which must exist for their tenant).
            outsourced = threading.Barrier(len(TENANTS) + len(TENANTS), timeout=60)

            def owner_with_signal(tag: str, seed: int):
                try:
                    owner = DataOwner.from_seed(
                        seed, config=F2Config(alpha=0.34, seed=seed)
                    )
                    owners[tag] = owner
                    session = RemoteOwnerSession(
                        owner,
                        ProtocolClient(SocketTransport(port=port)),
                        credential=credentials[tag],
                    )
                    session.outsource(tenant_table(tag))
                    outsourced.wait(timeout=30)
                    deltas = 0
                    for round_index in range(ROUNDS):
                        session.insert_rows(incremental_rows(tag, owner, round_index))
                        deltas += session.last_delta is not None
                        zipcode = owner.plaintext.value(0, "Zipcode")
                        matches = session.query("Zipcode", zipcode)
                        expected = owner.select_plaintext("Zipcode", zipcode)
                        assert list(matches.rows()) == list(expected.rows())
                    discovery = session.discover_fds(max_lhs_size=2)
                    assert discovery.parameters["validated"] is True
                    results[tag] = [deltas]
                    session.close()
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = []
            for index, tag in enumerate(TENANTS):
                threads.append(
                    threading.Thread(target=owner_with_signal, args=(tag, 100 + index))
                )
                threads.append(threading.Thread(target=analyst_worker, args=(tag, outsourced)))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)

        assert errors == []
        assert set(results) == set(TENANTS)
        # Every tenant shipped at least one delta (the path was exercised
        # under concurrency, not silently falling back every round).
        assert all(deltas >= 1 for (deltas,) in results.values())

        # Final isolation audit on the server state itself: each tenant's
        # stored ciphertext decrypts (with that tenant's key) to exactly
        # that tenant's plaintext — and therefore contains no other
        # tenant's rows.
        store_keys = server.table_ids(None)
        assert sorted(store_keys) == [f"{tag}/default" for tag in TENANTS]
        for tag in TENANTS:
            stored = server.store("default", tenant_id=tag)
            owner = owners[tag]
            assert stored.num_rows == owner.encrypted.relation.num_rows
            decrypted = owner.decrypt()
            assert list(decrypted.rows()) == list(owner.plaintext.rows())
            for row in decrypted.rows():
                assert all(str(value).startswith(tag) for value in row), row

"""The batched crypto hot path: PRF batch evaluation, batch encryption.

The contract under test is *byte-identity*: every batch API must produce
exactly the bytes of its per-cell loop equivalent — including the order in
which entropy is consumed — because the golden-ciphertext pins in
``test_backend_equivalence.py`` hold for every batching/worker configuration.
"""

from __future__ import annotations

import hashlib
import hmac
import random

import pytest

from repro.backend import get_backend, numpy_available
from repro.backend.base import BackendError
from repro.crypto.keys import KeyGen
from repro.crypto.prf import Prf, xor_bytes
from repro.crypto.probabilistic import Ciphertext, ProbabilisticCipher
from repro.exceptions import DecryptionError, EncryptionError

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")

KEY = KeyGen.symmetric_from_seed(99)


def _patch_urandom(monkeypatch, seed: int = 1234) -> None:
    rng = random.Random(seed)
    monkeypatch.setattr(
        "repro.crypto.probabilistic.os.urandom",
        lambda n: bytes(rng.getrandbits(8) for _ in range(n)),
    )


def _counter_mode_reference(key: bytes, message: bytes, length: int) -> bytes:
    """The counter-mode expansion spelled out by hand (no one-shot shortcut)."""
    blocks = []
    produced = 0
    counter = 0
    while produced < length:
        block = hmac.new(key, message + counter.to_bytes(4, "big"), hashlib.sha256).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


# ----------------------------------------------------------------------
# Prf.evaluate edge cases (satellite: boundary + one-shot equivalence)
# ----------------------------------------------------------------------
class TestPrfEvaluateEdges:
    def test_zero_length_output(self):
        prf = Prf(b"k" * 32)
        assert prf.evaluate(b"msg", 0) == b""

    @pytest.mark.parametrize("length", [1, 31, 32])
    def test_one_shot_path_matches_counter_mode(self, length):
        """<= 32 bytes takes the single-HMAC shortcut; the bytes must equal
        the counter-mode loop's first block (counter 0 is the b"\\x00"*4
        suffix the shortcut appends)."""
        key = b"k" * 32
        prf = Prf(key)
        assert prf.evaluate(b"msg", length) == _counter_mode_reference(key, b"msg", length)

    @pytest.mark.parametrize("length", [33, 64, 65, 100])
    def test_multi_block_matches_reference(self, length):
        key = b"edge-key"
        prf = Prf(key)
        assert prf.evaluate(b"payload", length) == _counter_mode_reference(
            key, b"payload", length
        )

    def test_block_boundary_is_prefix_consistent(self):
        """33 bytes extends 32 bytes: same first block, one more counter."""
        prf = Prf(b"k" * 32)
        at_32 = prf.evaluate(b"m", 32)
        at_33 = prf.evaluate(b"m", 33)
        assert at_33[:32] == at_32

    def test_negative_length_rejected(self):
        prf = Prf(b"k" * 32)
        with pytest.raises(ValueError):
            prf.evaluate(b"m", -1)


class TestPrfEvaluateMany:
    @pytest.mark.parametrize("length", [0, 1, 16, 32, 33, 64, 100])
    def test_matches_evaluate_per_message(self, length):
        prf = Prf(b"batch-key")
        messages = [b"", b"a", b"hello world", b"x" * 200]
        batch = prf.evaluate_many(messages, length)
        assert batch == [prf.evaluate(message, length) for message in messages]

    def test_per_message_lengths(self):
        prf = Prf(b"batch-key")
        messages = [b"a", b"b", b"c", b"d"]
        lengths = [0, 7, 32, 41]
        batch = prf.evaluate_many(messages, lengths)
        assert [len(output) for output in batch] == lengths
        assert batch == [
            prf.evaluate(message, length) for message, length in zip(messages, lengths)
        ]

    def test_empty_batch(self):
        assert Prf(b"k").evaluate_many([], 16) == []

    def test_length_count_mismatch_rejected(self):
        prf = Prf(b"k")
        with pytest.raises(ValueError):
            prf.evaluate_many([b"a", b"b"], [16])

    def test_negative_length_rejected(self):
        prf = Prf(b"k")
        with pytest.raises(ValueError):
            prf.evaluate_many([b"a"], [-3])


# ----------------------------------------------------------------------
# Backend xor_blocks
# ----------------------------------------------------------------------
class TestXorBlocks:
    def test_python_matches_reference_xor(self):
        backend = get_backend("python")
        rng = random.Random(7)
        first = bytes(rng.getrandbits(8) for _ in range(333))
        second = bytes(rng.getrandbits(8) for _ in range(333))
        assert backend.xor_blocks(first, second) == xor_bytes(first, second)

    def test_empty_buffers(self):
        assert get_backend("python").xor_blocks(b"", b"") == b""

    def test_length_mismatch_rejected(self):
        with pytest.raises(BackendError):
            get_backend("python").xor_blocks(b"ab", b"a")

    @needs_numpy
    def test_numpy_matches_python(self):
        python_backend = get_backend("python")
        numpy_backend = get_backend("numpy")
        rng = random.Random(11)
        for size in (0, 1, 16, 1024, 4097):
            first = bytes(rng.getrandbits(8) for _ in range(size))
            second = bytes(rng.getrandbits(8) for _ in range(size))
            assert numpy_backend.xor_blocks(first, second) == python_backend.xor_blocks(
                first, second
            )

    @needs_numpy
    def test_numpy_length_mismatch_rejected(self):
        with pytest.raises(BackendError):
            get_backend("numpy").xor_blocks(b"abc", b"ab")


# ----------------------------------------------------------------------
# Batch encryption / decryption
# ----------------------------------------------------------------------
def _mixed_items() -> list[tuple[object, object]]:
    """Instance cells (variants), random cells (None), and repeats."""
    return [
        ("Hoboken", "mas0:v1"),
        ("07030", None),
        (12345, "mas1:v2"),
        ("Hoboken", "mas0:v1"),  # same (value, variant): identical ciphertext
        ("free-text cell", None),
        ("", None),  # empty plaintext
        ("", "mas0:v9"),
    ]


class TestEncryptBatch:
    def test_byte_identical_to_per_cell_loop(self, monkeypatch):
        items = _mixed_items()
        _patch_urandom(monkeypatch, seed=55)
        cipher = ProbabilisticCipher(KEY)
        serial = [cipher.encrypt(value, variant) for value, variant in items]
        _patch_urandom(monkeypatch, seed=55)
        cipher = ProbabilisticCipher(KEY)
        batch = cipher.encrypt_batch(items)
        assert batch == serial

    @needs_numpy
    def test_numpy_backend_byte_identical(self, monkeypatch):
        items = _mixed_items()
        _patch_urandom(monkeypatch, seed=55)
        reference = ProbabilisticCipher(KEY).encrypt_batch(items)
        _patch_urandom(monkeypatch, seed=55)
        via_numpy = ProbabilisticCipher(KEY).encrypt_batch(
            items, backend=get_backend("numpy")
        )
        assert via_numpy == reference

    def test_pre_supplied_nonces_used_verbatim(self):
        cipher = ProbabilisticCipher(KEY)
        nonces = [bytes([index]) * cipher.nonce_length for index in range(3)]
        batch = cipher.encrypt_batch(
            [("a", None), ("b", None), ("c", None)], nonces=nonces
        )
        assert [ciphertext.nonce for ciphertext in batch] == nonces
        assert cipher.decrypt_batch(batch) == ["a", "b", "c"]

    def test_partial_nonces_mix_with_draws(self, monkeypatch):
        _patch_urandom(monkeypatch, seed=9)
        cipher = ProbabilisticCipher(KEY)
        fixed = b"\xaa" * cipher.nonce_length
        batch = cipher.encrypt_batch(
            [("a", None), ("b", None)], nonces=[fixed, None]
        )
        assert batch[0].nonce == fixed
        assert batch[1].nonce != fixed
        assert cipher.decrypt_batch(batch) == ["a", "b"]

    def test_nonce_count_mismatch_rejected(self):
        cipher = ProbabilisticCipher(KEY)
        with pytest.raises(EncryptionError):
            cipher.encrypt_batch([("a", None)], nonces=[])

    def test_empty_batch(self):
        assert ProbabilisticCipher(KEY).encrypt_batch([]) == []

    def test_draw_nonces_equals_individual_draws(self, monkeypatch):
        _patch_urandom(monkeypatch, seed=4242)
        import os as _os
        from repro.crypto import probabilistic as prob_module

        individual = [prob_module.os.urandom(16) for _ in range(5)]
        _patch_urandom(monkeypatch, seed=4242)
        cipher = ProbabilisticCipher(KEY, nonce_length=16)
        assert cipher.draw_nonces(5) == individual
        assert cipher.draw_nonces(0) == []


class TestDecryptBatch:
    def test_matches_per_cell_decrypt(self):
        cipher = ProbabilisticCipher(KEY)
        batch = cipher.encrypt_batch(_mixed_items())
        assert cipher.decrypt_batch(batch) == [
            cipher.decrypt(ciphertext) for ciphertext in batch
        ]

    @needs_numpy
    def test_numpy_backend_matches(self):
        cipher = ProbabilisticCipher(KEY)
        batch = cipher.encrypt_batch(_mixed_items())
        assert cipher.decrypt_batch(batch, backend=get_backend("numpy")) == (
            cipher.decrypt_batch(batch)
        )

    def test_rejects_non_ciphertext(self):
        cipher = ProbabilisticCipher(KEY)
        with pytest.raises(DecryptionError):
            cipher.decrypt_batch([b"not-a-ciphertext"])

    def test_wrong_key_raises(self):
        batch = ProbabilisticCipher(KEY).encrypt_batch([("secret", None)] * 3)
        other = ProbabilisticCipher(KeyGen.symmetric_from_seed(1000))
        with pytest.raises(DecryptionError):
            other.decrypt_batch(batch)

    def test_empty_batch(self):
        assert ProbabilisticCipher(KEY).decrypt_batch([]) == []


class TestKeyMaterialRoundTrip:
    def test_reconstructed_cipher_is_byte_identical(self):
        from repro.crypto.keys import SymmetricKey

        cipher = ProbabilisticCipher(KEY, nonce_length=16)
        rebuilt = ProbabilisticCipher(SymmetricKey(cipher.key_material), nonce_length=16)
        items = [("value", "variant-a"), ("other", "variant-b")]
        assert rebuilt.encrypt_batch(items) == cipher.encrypt_batch(items)

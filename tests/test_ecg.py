"""Tests for Step 2.1: equivalence-class grouping (ECGs)."""

import pytest

from repro.core.ecg import EcgMember, build_equivalence_class_groups
from repro.core.plan import FreshValueFactory
from repro.exceptions import EncryptionError
from repro.relational.partition import Partition
from repro.relational.table import Relation


@pytest.fixture
def factory() -> FreshValueFactory:
    return FreshValueFactory(seed=1)


def partition_of(rows, attributes=("A", "B")):
    relation = Relation(list(attributes), rows)
    return Partition.build(relation, attributes)


class TestGroupingInvariants:
    def test_every_group_reaches_required_size(self, paper_figure4_table, factory):
        partition = Partition.build(paper_figure4_table, ["A", "B"])
        result = build_equivalence_class_groups(partition, group_size=3, fresh_factory=factory)
        assert all(len(group.members) >= 3 for group in result.groups)

    def test_groups_are_collision_free(self, paper_figure4_table, factory):
        partition = Partition.build(paper_figure4_table, ["A", "B"])
        result = build_equivalence_class_groups(partition, group_size=3, fresh_factory=factory)
        assert all(group.is_collision_free() for group in result.groups)

    def test_every_real_class_assigned_exactly_once(self, zipcode_table, factory):
        partition = Partition.build(zipcode_table, ["Zipcode", "City"])
        result = build_equivalence_class_groups(partition, group_size=2, fresh_factory=factory)
        assigned = [
            member.representative
            for group in result.groups
            for member in group.members
            if not member.is_fake
        ]
        expected = [ec.representative for ec in partition.classes]
        assert sorted(map(str, assigned)) == sorted(map(str, expected))

    def test_fake_members_fill_small_groups(self, factory):
        # Two colliding classes (same value on A) can never share a group, so
        # with k=2 each group needs one fake member.
        partition = partition_of([["a1", "b1"], ["a1", "b1"], ["a1", "b2"], ["a1", "b2"]])
        result = build_equivalence_class_groups(partition, group_size=2, fresh_factory=factory)
        assert result.fake_ec_count >= 2
        assert all(len(group.members) == 2 for group in result.groups)

    def test_fake_member_size_is_group_minimum(self, factory):
        partition = partition_of(
            [["a1", "b1"]] * 4 + [["a1", "b2"]] * 2
        )
        result = build_equivalence_class_groups(partition, group_size=2, fresh_factory=factory)
        for group in result.groups:
            real_sizes = [member.size for member in group.members if not member.is_fake]
            for member in group.members:
                if member.is_fake:
                    assert member.size == min(real_sizes)

    def test_grouping_prefers_similar_sizes(self, factory):
        # Classes of sizes 1,1,5,5 with no collisions: expect {1,1} and {5,5}.
        rows = (
            [["a1", "b1"]] * 5
            + [["a2", "b2"]] * 5
            + [["a3", "b3"]]
            + [["a4", "b4"]]
        )
        partition = partition_of(rows)
        result = build_equivalence_class_groups(partition, group_size=2, fresh_factory=factory)
        size_sets = sorted(sorted(group.sizes) for group in result.groups)
        assert size_sets == [[1, 1], [5, 5]]

    def test_group_size_one_never_adds_fakes(self, zipcode_table, factory):
        partition = Partition.build(zipcode_table, ["Zipcode", "City"])
        result = build_equivalence_class_groups(partition, group_size=1, fresh_factory=factory)
        assert result.fake_ec_count == 0

    def test_invalid_group_size_rejected(self, paper_figure4_table, factory):
        partition = Partition.build(paper_figure4_table, ["A", "B"])
        with pytest.raises(EncryptionError):
            build_equivalence_class_groups(partition, group_size=0, fresh_factory=factory)

    def test_fake_rows_added_counter_matches_sizes(self, factory):
        partition = partition_of([["a1", "b1"], ["a1", "b1"], ["a1", "b2"], ["a1", "b2"]])
        result = build_equivalence_class_groups(partition, group_size=3, fresh_factory=factory)
        total_fake_rows = sum(
            member.size for group in result.groups for member in group.members if member.is_fake
        )
        assert result.fake_rows_added == total_fake_rows


class TestPaperExample:
    def test_figure2_grouping(self, factory):
        """Figure 2: five ECs of sizes 5,4,3,2,2 over MAS {A,B} with alpha=1/3.

        The paper groups them as {C1, C3, fake} and {C2, C4, C5} because C1/C2
        share a1, C2/C3 share b2, and C3/C4 share a2.
        """
        rows = (
            [["a1", "b1"]] * 5
            + [["a1", "b2"]] * 4
            + [["a2", "b2"]] * 3
            + [["a2", "b1"]] * 2
            + [["a3", "b3"]] * 2
        )
        partition = partition_of(rows)
        result = build_equivalence_class_groups(partition, group_size=3, fresh_factory=factory)
        assert len(result.groups) == 2
        assert all(len(group.members) == 3 for group in result.groups)
        assert all(group.is_collision_free() for group in result.groups)
        # Exactly one fake EC is needed (the paper's C6).
        assert result.fake_ec_count == 1


class TestEcgMember:
    def test_collision_on_any_attribute(self):
        first = EcgMember(representative=("x", "y"), rows=(0,))
        second = EcgMember(representative=("x", "z"), rows=(1,))
        third = EcgMember(representative=("p", "q"), rows=(2,))
        assert first.collides_with(second)
        assert not first.collides_with(third)

    def test_fake_member_size(self):
        fake = EcgMember(representative=("t1", "t2"), rows=(), is_fake=True, fake_size=7)
        assert fake.size == 7

    def test_real_member_size(self):
        real = EcgMember(representative=("x", "y"), rows=(3, 4, 5))
        assert real.size == 3

"""Regression coverage for the (fixed) FD-preservation false negative.

ROADMAP ("Known algorithmic bug", PR 1): on small tables with several
overlapping MASs plus conflicts, conflict resolution could *lose* a true
FD — a version of a conflicting row kept an instance's ciphertext on part
of a MAS while freshening the rest, so the instance's prefix appeared next
to a value the instance never had, violating Theorem 3.7.  Fixed in
``repro.core.conflict._uncorrupted``: a version only retains bindings whose
MAS is untouched by its fresh set (a fully kept MAS cannot break an FD,
because by MAS maximality the RHS of any FD whose LHS lies inside the MAS
also lies inside it).

The pinned falsifying example now encrypts correctly; the detection pass in
:class:`repro.api.stages.VerifyRepairStage` stays, and its warning path is
exercised directly against a doctored ciphertext.
"""

from __future__ import annotations

import warnings
from types import SimpleNamespace

import pytest

from repro.api.stages import VerifyRepairStage
from repro.core.config import F2Config
from repro.core.scheme import F2Scheme
from repro.crypto.keys import KeyGen
from repro.exceptions import FdPreservationWarning
from repro.fd.fd import FunctionalDependency
from repro.fd.tane import tane
from repro.fd.verify import fd_holds
from repro.relational.table import Relation

#: The ROADMAP falsifying example: plaintext holds {X0, X2} -> X3; before
#: the conflict-resolution fix the ciphertext only held {X0, X1, X2} -> X3
#: (a conflict version carried a partial MAS instance, losing the witness).
LOST_FD_TABLE = Relation(
    ["X0", "X1", "X2", "X3"],
    [
        ["v0_0", "v1_0", "v2_1", "v3_0"],
        ["v0_0", "v1_0", "v2_0", "v3_1"],
        ["v0_0", "v1_1", "v2_0", "v3_1"],
        ["v0_0", "v1_1", "v2_1", "v3_0"],
        ["v0_1", "v1_0", "v2_0", "v3_0"],
    ],
    name="roadmap-lost-fd",
)
KEY_SEED = 1
CONFIG_SEED = 1
ALPHA = 0.5
LOST_FD = FunctionalDependency(["X0", "X2"], "X3")


def _encrypt(**config_overrides):
    config = F2Config(alpha=ALPHA, seed=CONFIG_SEED, **config_overrides)
    scheme = F2Scheme(key=KeyGen.symmetric_from_seed(KEY_SEED), config=config)
    return scheme.encrypt(LOST_FD_TABLE.copy())


def test_plaintext_holds_the_fd():
    assert fd_holds(LOST_FD_TABLE, LOST_FD)
    assert any(fd == LOST_FD for fd in tane(LOST_FD_TABLE))


def test_lost_fd_is_preserved():
    """The historical falsifying example survives encryption intact."""
    encrypted = _encrypt()
    assert fd_holds(encrypted.server_view(), LOST_FD), (
        "Theorem 3.7 violated: plaintext FD absent from the ciphertext"
    )
    assert tane(LOST_FD_TABLE).equivalent_to(tane(encrypted.server_view()))


def test_verify_repair_is_quiet_on_the_fixed_example():
    """verify_and_repair no longer warns on the pinned table."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", FdPreservationWarning)
        encrypted = _encrypt(verify_and_repair=True)
    assert "lost_fds" not in encrypted.metadata


def test_lost_fd_detection_still_fires_on_a_doctored_ciphertext():
    """The false-negative detector itself keeps working.

    No known input reproduces a lost FD any more, so the warning path is
    driven directly: a fake ciphertext relation breaks {X0, X2} -> X3 by
    giving two rows the same (X0, X2) pair but different X3 values.
    """
    doctored = Relation(
        ["X0", "X1", "X2", "X3"],
        [
            ["c0", "c1a", "c2", "c3a"],
            ["c0", "c1b", "c2", "c3b"],
        ],
        name="doctored",
    )
    ctx = SimpleNamespace(
        relation=LOST_FD_TABLE,
        config=F2Config(alpha=ALPHA, verify_and_repair=True),
        backend=None,
        metadata={},
    )
    encrypted = SimpleNamespace(relation=doctored, metadata={})
    ciphertext_fds = tane(doctored)
    with pytest.warns(FdPreservationWarning, match=r"X0.*X2.*X3"):
        VerifyRepairStage._warn_about_lost_fds(ctx, encrypted, ciphertext_fds)
    assert encrypted.metadata.get("lost_fds")
    assert any("X3" in text for text in encrypted.metadata["lost_fds"])


def test_verify_repair_is_quiet_when_fds_survive(zipcode_table):
    """No spurious warnings on a table whose FDs all survive encryption."""
    config = F2Config(alpha=0.25, seed=7, verify_and_repair=True)
    scheme = F2Scheme(key=KeyGen.symmetric_from_seed(43), config=config)
    with warnings.catch_warnings():
        warnings.simplefilter("error", FdPreservationWarning)
        encrypted = scheme.encrypt(zipcode_table)
    assert "lost_fds" not in encrypted.metadata

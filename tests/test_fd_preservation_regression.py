"""Regression coverage for the known FD-preservation false negative.

ROADMAP ("Known algorithmic bug"): on small tables with several overlapping
MASs plus conflicts, conflict resolution can *lose* a true FD — the
ciphertext no longer satisfies a dependency the plaintext holds, violating
Theorem 3.7.  Hypothesis found the falsifying example pinned below during
PR 1, reproduced on the seed code (not a regression of the pipeline work).

The encoding here is deliberate:

* the broken behaviour is an ``xfail(strict=True)`` test — the day someone
  fixes conflict resolution, the xfail flips to XPASS and fails the suite,
  forcing the marker's removal (and making the fix visible);
* the verify/repair stage must at least *detect* the loss and warn
  (:class:`repro.exceptions.FdPreservationWarning`), so operators of strict
  pipelines are not silently handed a table with missing dependencies.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import F2Config
from repro.core.scheme import F2Scheme
from repro.crypto.keys import KeyGen
from repro.exceptions import FdPreservationWarning
from repro.fd.fd import FunctionalDependency
from repro.fd.tane import tane
from repro.fd.verify import fd_holds
from repro.relational.table import Relation

#: The ROADMAP falsifying example: plaintext holds {X0, X2} -> X3, but after
#: encryption with alpha=0.5, key seed 1, config seed 1 the ciphertext only
#: holds {X0, X1, X2} -> X3 (the cross-MAS agreement pattern loses the
#: violation witness).
LOST_FD_TABLE = Relation(
    ["X0", "X1", "X2", "X3"],
    [
        ["v0_0", "v1_0", "v2_1", "v3_0"],
        ["v0_0", "v1_0", "v2_0", "v3_1"],
        ["v0_0", "v1_1", "v2_0", "v3_1"],
        ["v0_0", "v1_1", "v2_1", "v3_0"],
        ["v0_1", "v1_0", "v2_0", "v3_0"],
    ],
    name="roadmap-lost-fd",
)
KEY_SEED = 1
CONFIG_SEED = 1
ALPHA = 0.5
LOST_FD = FunctionalDependency(["X0", "X2"], "X3")


def _encrypt(**config_overrides):
    config = F2Config(alpha=ALPHA, seed=CONFIG_SEED, **config_overrides)
    scheme = F2Scheme(key=KeyGen.symmetric_from_seed(KEY_SEED), config=config)
    return scheme.encrypt(LOST_FD_TABLE.copy())


def test_plaintext_holds_the_fd():
    assert fd_holds(LOST_FD_TABLE, LOST_FD)
    assert any(fd == LOST_FD for fd in tane(LOST_FD_TABLE))


@pytest.mark.xfail(
    strict=True,
    reason="known false negative: conflict resolution across overlapping MASs "
    "loses the {X0,X2} -> X3 witness (ROADMAP 'Known algorithmic bug'); "
    "remove this marker when conflict resolution respects cross-MAS "
    "instance co-occurrence",
)
def test_lost_fd_is_preserved():
    encrypted = _encrypt()
    assert fd_holds(encrypted.server_view(), LOST_FD), (
        "Theorem 3.7 violated: plaintext FD absent from the ciphertext"
    )


def test_verify_repair_warns_about_lost_fd():
    """The cheap detection pass must flag the false negative, not fix it."""
    with pytest.warns(FdPreservationWarning, match=r"X0.*X2.*X3"):
        encrypted = _encrypt(verify_and_repair=True)
    lost = encrypted.metadata.get("lost_fds")
    assert lost, "the lost FDs must be recorded in the table metadata"
    assert any("X3" in text for text in lost)


def test_verify_repair_is_quiet_when_fds_survive(zipcode_table):
    """No spurious warnings on a table whose FDs all survive encryption."""
    config = F2Config(alpha=0.25, seed=7, verify_and_repair=True)
    scheme = F2Scheme(key=KeyGen.symmetric_from_seed(43), config=config)
    with warnings.catch_warnings():
        warnings.simplefilter("error", FdPreservationWarning)
        encrypted = scheme.encrypt(zipcode_table)
    assert "lost_fds" not in encrypted.metadata

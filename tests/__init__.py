"""Test suite for the F2 reproduction library."""

"""Tests of the query planner: server/residual split, tokens, wire hygiene."""

import json

import pytest

from repro.api import DataOwner, Message, PlanQueryRequest
from repro.core.config import F2Config
from repro.exceptions import QueryError
from repro.query import (
    And,
    Eq,
    In,
    Not,
    Or,
    ServerAnd,
    ServerOr,
    TokenLeaf,
    collect_leaves,
    parse_predicate,
    server_expr_from_doc,
    server_expr_to_doc,
)
from repro.query.server import ServerNot, renumber_leaves
from repro.wire import WIRE_FORMS


@pytest.fixture
def owner(zipcode_table) -> DataOwner:
    owner = DataOwner.from_seed(42, config=F2Config(alpha=0.25, seed=7))
    owner.outsource(zipcode_table)
    return owner


class TestPlanning:
    def test_pure_server_conjunction(self, owner):
        plan = owner.plan_query("City = Hoboken and Zipcode = '07030'")
        assert plan.mode == "server"
        assert plan.residual is None
        assert isinstance(plan.server, ServerAnd)
        assert [leaf.attribute for leaf in plan.leaves] == ["City", "Zipcode"]
        assert all(len(leaf.token) > 0 for leaf in plan.leaves)
        assert plan.server_predicate == plan.predicate

    def test_non_mas_attribute_goes_local(self, owner):
        # Street values are unique: outside every MAS, no derivable token.
        plan = owner.plan_query("Street = street-1")
        assert plan.mode == "local"
        assert plan.server is None
        assert plan.residual == Eq("Street", "street-1")
        assert any("outside every MAS" in note for note in plan.notes)

    def test_conjunction_splits_into_hybrid(self, owner):
        plan = owner.plan_query("City = Hoboken and Street = street-1")
        assert plan.mode == "hybrid"
        assert isinstance(plan.server, TokenLeaf)
        assert plan.server_predicate == Eq("City", "Hoboken")
        assert plan.residual == Eq("Street", "street-1")

    def test_negation_goes_local(self, owner):
        plan = owner.plan_query("not City = Hoboken")
        assert plan.mode == "local"
        assert any("complement" in note for note in plan.notes)
        # ... also inside a conjunction: the negated conjunct is residual.
        plan = owner.plan_query("Zipcode = '07030' and Side != N")
        assert plan.mode == "hybrid"
        assert plan.server_predicate == Eq("Zipcode", "07030")
        assert plan.residual == Not(Eq("Side", "N"))

    def test_mixed_disjunction_goes_fully_local(self, owner):
        # One non-serverable disjunct poisons the whole Or: a partial server
        # union could not restrict the candidate set.
        plan = owner.plan_query("City = Hoboken or Street = street-1")
        assert plan.mode == "local"
        assert any("disjunction" in note for note in plan.notes)

    def test_pure_server_disjunction(self, owner):
        plan = owner.plan_query("City = Hoboken or Zipcode = '07302'")
        assert plan.mode == "server"
        assert isinstance(plan.server, ServerOr)

    def test_in_list_is_one_leaf_with_union_token(self, owner):
        plan = owner.plan_query("Zipcode in ('07030', '07302')")
        assert plan.mode == "server"
        assert isinstance(plan.server, TokenLeaf)
        leaf = plan.server
        union = set(owner.derive_search_token("Zipcode", "07030"))
        union |= set(owner.derive_search_token("Zipcode", "07302"))
        assert set(leaf.token) == union
        assert leaf.values == ("07030", "07302")

    def test_absent_value_yields_empty_token(self, owner):
        plan = owner.plan_query("City = Atlantis")
        assert plan.mode == "server"
        assert plan.server.token == ()

    def test_leaf_indexes_are_preorder(self, owner):
        plan = owner.plan_query(
            "(City = Hoboken or City = JerseyCity) and Zipcode = '07030'"
        )
        assert [leaf.index for leaf in plan.leaves] == [0, 1, 2]
        assert plan.token_sizes() == [len(leaf.token) for leaf in plan.leaves]

    def test_explain_mentions_tokens_and_residual(self, owner):
        plan = owner.plan_query("City = Hoboken and Street = street-1")
        text = plan.explain()
        assert "mode: hybrid" in text
        assert "City" in text and "token" in text.lower()
        assert "Street = street-1" in text

    def test_plan_requires_known_attributes(self, owner):
        with pytest.raises(QueryError):
            owner.plan_query("Nope = 1")

    def test_plan_accepts_ast_nodes(self, owner):
        plan = owner.plan_query(And((Eq("City", "Hoboken"), In("Side", ("N",)))))
        assert plan.mode in ("server", "hybrid")

    def test_plan_rejects_non_predicate(self, owner):
        with pytest.raises(QueryError):
            owner.plan_query(42)  # type: ignore[arg-type]


class TestServerExprWire:
    def expr(self, owner):
        return owner.plan_query(
            "(City = Hoboken or City = JerseyCity) and Zipcode = '07030'"
        ).server

    def test_doc_roundtrip_preserves_structure_and_tokens(self, owner):
        expr = self.expr(owner)
        doc = server_expr_to_doc(expr)
        tokens = {leaf.index: leaf.token for leaf in collect_leaves(expr)}
        rebuilt = server_expr_from_doc(doc, tokens)
        assert server_expr_to_doc(rebuilt) == doc
        assert [leaf.token for leaf in collect_leaves(rebuilt)] == [
            leaf.token for leaf in collect_leaves(expr)
        ]

    def test_doc_carries_no_plaintext_values(self, owner):
        doc = server_expr_to_doc(self.expr(owner))
        rendered = json.dumps(doc)
        assert "Hoboken" not in rendered
        assert "JerseyCity" not in rendered
        assert "07030" not in rendered

    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_encoded_request_carries_no_plaintext(self, owner, form):
        # The wire hygiene property end to end: whatever the owner queries
        # for, the encoded request bytes never contain the plaintext values.
        request = PlanQueryRequest(table_id="default", expr=self.expr(owner))
        payload = request.encode(form)
        for secret in (b"Hoboken", b"JerseyCity", b"07030"):
            assert secret not in payload
        decoded = Message.decode(payload)
        assert isinstance(decoded, PlanQueryRequest)
        # Decoded leaves carry tokens and structure but no values annotation.
        for leaf in collect_leaves(decoded.expr):
            assert leaf.values == ()
        assert server_expr_to_doc(decoded.expr) == server_expr_to_doc(self.expr(owner))

    def test_renumber_preorder_including_not(self):
        leaf = TokenLeaf(attribute="A", token=(), index=99)
        expr = renumber_leaves(ServerNot(ServerAnd((leaf, leaf))))
        assert [l.index for l in collect_leaves(expr)] == [0, 1]

    def test_from_doc_rejects_malformed(self):
        from repro.exceptions import WireError

        with pytest.raises(WireError):
            server_expr_from_doc({"op": "xor"}, {})
        with pytest.raises(WireError):
            server_expr_from_doc({"op": "leaf", "index": 0}, {0: ()})
        with pytest.raises(WireError):
            server_expr_from_doc({"op": "leaf", "index": 1, "attribute": "A"}, {})
        with pytest.raises(WireError):
            server_expr_from_doc({"op": "and", "children": []}, {})
        with pytest.raises(WireError):
            server_expr_from_doc({"op": "not"}, {})

"""Tests for the PRF and key-generation primitives."""

import pytest

from repro.crypto.keys import KeyGen, SymmetricKey
from repro.crypto.prf import Prf, xor_bytes


class TestPrf:
    def test_deterministic_for_same_inputs(self):
        prf = Prf(b"secret-key")
        assert prf.evaluate(b"message", 32) == prf.evaluate(b"message", 32)

    def test_different_messages_differ(self):
        prf = Prf(b"secret-key")
        assert prf.evaluate(b"m1", 32) != prf.evaluate(b"m2", 32)

    def test_different_keys_differ(self):
        assert Prf(b"key-1").evaluate(b"m", 32) != Prf(b"key-2").evaluate(b"m", 32)

    def test_output_length_respected(self):
        prf = Prf(b"k")
        for length in (0, 1, 16, 32, 33, 100):
            assert len(prf.evaluate(b"m", length)) == length

    def test_long_output_extends_prefix(self):
        prf = Prf(b"k")
        assert prf.evaluate(b"m", 64)[:32] == prf.evaluate(b"m", 32)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Prf(b"k").evaluate(b"m", -1)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            Prf(b"")

    def test_evaluate_int_bit_width(self):
        prf = Prf(b"k")
        for bits in (1, 7, 8, 16, 31):
            assert prf.evaluate_int(b"m", bits) < 2**bits


class TestXorBytes:
    def test_xor_roundtrip(self):
        first, second = b"abcdef", b"zyxwvu"
        assert xor_bytes(xor_bytes(first, second), second) == first

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")


class TestKeyGen:
    def test_symmetric_key_length(self):
        assert KeyGen.symmetric(128).bits == 128
        assert KeyGen.symmetric(256).bits == 256

    def test_symmetric_keys_are_random(self):
        assert KeyGen.symmetric().material != KeyGen.symmetric().material

    def test_small_security_parameter_rejected(self):
        with pytest.raises(ValueError):
            KeyGen.symmetric(32)

    def test_seeded_key_is_deterministic(self):
        assert KeyGen.symmetric_from_seed(7).material == KeyGen.symmetric_from_seed(7).material

    def test_seeded_keys_differ_across_seeds(self):
        assert KeyGen.symmetric_from_seed(1).material != KeyGen.symmetric_from_seed(2).material

    def test_seed_types(self):
        assert KeyGen.symmetric_from_seed("alpha").bits == 128
        assert KeyGen.symmetric_from_seed(b"raw-bytes").bits == 128
        assert KeyGen.symmetric_from_seed(-5).bits == 128

    def test_seeded_key_length_extension(self):
        assert KeyGen.symmetric_from_seed(3, security_parameter=512).bits == 512

    def test_empty_key_material_rejected(self):
        with pytest.raises(ValueError):
            SymmetricKey(b"")

    def test_subkeys_differ_by_label(self):
        key = KeyGen.symmetric_from_seed(9)
        assert key.subkey("a").material != key.subkey("b").material

    def test_subkeys_deterministic(self):
        key = KeyGen.symmetric_from_seed(9)
        assert key.subkey("label").material == key.subkey("label").material

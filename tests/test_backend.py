"""Unit tests of the pluggable compute backends (repro.backend).

Two layers of guarantees:

* selection — explicit name > ``REPRO_BACKEND`` > pure-Python default, with
  an actionable error when NumPy is requested but missing;
* result identity — every primitive returns exactly the same values on the
  NumPy backend as on the pure-Python reference, on randomised inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.backend import (
    BACKEND_ENV_VAR,
    ComputeBackend,
    PythonBackend,
    available_backends,
    get_backend,
    numpy_available,
)
from repro.exceptions import BackendError, BackendUnavailableError

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")


class TestSelection:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend(None).name == "python"
        assert get_backend("auto").name == "python"

    def test_explicit_names(self):
        assert get_backend("python").name == "python"
        assert isinstance(get_backend("python"), PythonBackend)

    def test_instance_passthrough(self):
        backend = PythonBackend()
        assert get_backend(backend) is backend

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert get_backend(None).name == "python"

    @needs_numpy
    def test_env_variable_numpy(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend(None).name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError):
            get_backend("fortran")

    def test_numpy_unavailable_error(self, monkeypatch):
        import repro.backend.base as base_module
        from repro.backend import numpy_backend

        monkeypatch.setattr(numpy_backend, "numpy_available", lambda: False)
        with pytest.raises(BackendUnavailableError, match="perf"):
            base_module.get_backend("numpy")

    def test_available_backends_reports_python(self):
        availability = available_backends()
        assert availability["python"] is True
        assert "numpy" in availability


def _backends() -> list[ComputeBackend]:
    backends = [get_backend("python")]
    if numpy_available():
        backends.append(get_backend("numpy"))
    return backends


def _random_codes(rng: random.Random, n: int, domain: int) -> list[int]:
    # Dense first-occurrence codes, like factorize produces.
    values = [rng.randrange(domain) for _ in range(n)]
    return PythonBackend().factorize(values)[0]


@needs_numpy
class TestResultIdentity:
    """The NumPy backend must agree with the reference on every primitive."""

    @pytest.mark.parametrize("seed", range(8))
    def test_factorize(self, seed):
        rng = random.Random(seed)
        values = [f"v{rng.randrange(6)}" for _ in range(rng.randrange(1, 60))]
        py_codes, py_dict = get_backend("python").factorize(values)
        np_codes, np_dict = get_backend("numpy").factorize(values)
        assert list(np_codes) == py_codes
        assert np_dict == py_dict

    @pytest.mark.parametrize("seed", range(8))
    def test_grouping_primitives(self, seed):
        rng = random.Random(100 + seed)
        n = rng.randrange(1, 80)
        columns = [_random_codes(rng, n, rng.randrange(2, 7)) for _ in range(rng.randrange(1, 4))]
        cards = [max(col) + 1 for col in columns]
        python, numpy_ = get_backend("python"), get_backend("numpy")
        py_codes, py_groups_count = python.combine_codes(columns, cards)
        np_codes, np_groups_count = numpy_.combine_codes(
            [numpy_.as_code_array(col) for col in columns], cards
        )
        # Code numbering is backend-internal; what must agree is the induced
        # grouping, the counts multiset, and the duplicate test.
        for min_size in (1, 2):
            assert python.group_rows(py_codes, py_groups_count, min_size) == numpy_.group_rows(
                np_codes, np_groups_count, min_size
            )
        assert sorted(python.counts(py_codes, py_groups_count)) == sorted(
            numpy_.counts(np_codes, np_groups_count)
        )
        assert python.has_duplicates(py_codes, py_groups_count) == numpy_.has_duplicates(
            np_codes, np_groups_count
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_stripped_product(self, seed):
        rng = random.Random(200 + seed)
        n = rng.randrange(2, 90)
        python, numpy_ = get_backend("python"), get_backend("numpy")

        def stripped(domain: int) -> list[list[int]]:
            codes = _random_codes(rng, n, domain)
            return python.group_rows(codes, max(codes) + 1, min_size=2)

        groups_a = stripped(rng.randrange(2, 8))
        groups_b = stripped(rng.randrange(2, 8))
        assert python.stripped_product(groups_a, groups_b, n) == numpy_.stripped_product(
            groups_a, groups_b, n
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_flat_stripped_roundtrip(self, seed):
        rng = random.Random(300 + seed)
        n = rng.randrange(2, 90)
        python, numpy_ = get_backend("python"), get_backend("numpy")
        codes = _random_codes(rng, n, rng.randrange(2, 8))
        num_values = max(codes) + 1
        flat = numpy_.stripped_from_codes(numpy_.as_code_array(codes), num_values)
        assert numpy_.materialize_groups(flat) == python.group_rows(codes, num_values, min_size=2)

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("group_size", [1, 2, 4, 7])
    def test_greedy_collision_free_groups(self, seed, group_size):
        rng = random.Random(400 + seed)
        num_members = rng.randrange(0, 70)
        num_attrs = rng.randrange(1, 4)
        matrix = [
            tuple(rng.randrange(5) for _ in range(num_attrs)) for _ in range(num_members)
        ]
        python, numpy_ = get_backend("python"), get_backend("numpy")
        py_groups = python.greedy_collision_free_groups(matrix, group_size)
        np_groups = numpy_.greedy_collision_free_groups(matrix, group_size)
        assert np_groups == py_groups
        # Sanity: the groups partition the members and are collision-free.
        flattened = sorted(index for group in py_groups for index in group)
        assert flattened == list(range(num_members))
        for group in py_groups:
            for i, first in enumerate(group):
                for second in group[i + 1 :]:
                    assert not any(
                        a == b for a, b in zip(matrix[first], matrix[second])
                    ), "greedy groups must be collision-free"

"""Tests for the EncryptedTable artifact and its owner-side metadata."""

import pytest

from repro.core.config import F2Config
from repro.core.encrypted import EncryptedTable, RowProvenance
from repro.core.stats import EncryptionStats
from repro.exceptions import DecryptionError
from repro.relational.table import Relation


def make_encrypted(num_rows=3, kinds=("original", "scaling", "false_positive")) -> EncryptedTable:
    relation = Relation(["A"], [[f"cipher-{index}"] for index in range(num_rows)])
    provenance = [
        RowProvenance(
            kind=kinds[index % len(kinds)],
            source_row=index if kinds[index % len(kinds)] in {"original", "conflict"} else None,
            authentic_attributes=frozenset({"A"})
            if kinds[index % len(kinds)] in {"original", "conflict"}
            else frozenset(),
        )
        for index in range(num_rows)
    ]
    stats = EncryptionStats(rows_original=sum(1 for p in provenance if p.kind == "original"))
    return EncryptedTable(
        relation=relation, provenance=provenance, config=F2Config(), stats=stats
    )


class TestRowProvenance:
    def test_artificial_kinds(self):
        assert RowProvenance("scaling", None, frozenset()).is_artificial
        assert RowProvenance("fake_ec", None, frozenset()).is_artificial
        assert RowProvenance("false_positive", None, frozenset()).is_artificial
        assert RowProvenance("repair", None, frozenset()).is_artificial
        assert not RowProvenance("original", 0, frozenset({"A"})).is_artificial
        assert not RowProvenance("conflict", 0, frozenset({"A"})).is_artificial


class TestEncryptedTable:
    def test_provenance_length_mismatch_rejected(self):
        relation = Relation(["A"], [["x"], ["y"]])
        with pytest.raises(DecryptionError):
            EncryptedTable(
                relation=relation,
                provenance=[RowProvenance("original", 0, frozenset({"A"}))],
                config=F2Config(),
                stats=EncryptionStats(rows_original=2),
            )

    def test_server_view_is_a_copy(self):
        encrypted = make_encrypted()
        view = encrypted.server_view()
        view.append(["extra"])
        assert encrypted.num_rows == 3

    def test_artificial_row_indexes(self):
        encrypted = make_encrypted(6)
        artificial = encrypted.artificial_row_indexes()
        assert all(encrypted.provenance[index].is_artificial for index in artificial)
        assert len(artificial) == 4

    def test_original_row_groups(self):
        encrypted = make_encrypted(6)
        groups = encrypted.original_row_groups()
        assert set(groups) == {0, 3}

    def test_artificial_fraction(self):
        encrypted = make_encrypted(6)
        assert encrypted.artificial_fraction() == pytest.approx(4 / 6)

    def test_rows_by_kind(self):
        encrypted = make_encrypted(6)
        counts = encrypted.rows_by_kind()
        assert counts["original"] == 2
        assert counts["scaling"] == 2
        assert counts["false_positive"] == 2

    def test_describe_fields(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        description = encrypted.describe()
        assert description["original_rows"] == zipcode_table.num_rows
        assert description["ciphertext_rows"] == encrypted.num_rows
        assert description["attributes"] == zipcode_table.num_attributes
        assert description["masses"]

    def test_artificial_fraction_empty(self):
        encrypted = make_encrypted(3)
        assert 0 <= encrypted.artificial_fraction() <= 1

"""Tests of the observability subsystem: metrics, tracing, stats surface.

Covers the :mod:`repro.obs` core (registry, spans, exporters, rings), the
protocol-level ``StatsRequest`` surface, end-to-end trace-id propagation
over the real socket transport, the race-freedom of the per-table lock
metrics under threaded clients, and the byte-identity contract: metrics
forced on must never change ciphertext bytes (observability never draws
from the entropy stream).
"""

from __future__ import annotations

import json
import logging
import random as random_module
import threading

import pytest

from repro import obs
from repro.api import (
    DataOwner,
    LoopbackTransport,
    ProtocolClient,
    ProtocolServer,
    QueryRequest,
    RemoteOwnerSession,
    SocketProtocolServer,
    SocketTransport,
    StageRecorder,
    TenantRegistry,
)
from repro.api.auth import ErrorCode
from repro.core.config import F2Config
from repro.exceptions import ProtocolError


@pytest.fixture(autouse=True)
def metrics_on():
    """Force the registry on for every test; restore the ambient state."""
    previous = obs.REGISTRY.enabled
    obs.REGISTRY.set_enabled(True)
    yield
    obs.REGISTRY.set_enabled(previous)


def make_owner(key_seed: int = 42, seed: int = 7, alpha: float = 0.25) -> DataOwner:
    return DataOwner.from_seed(key_seed, config=F2Config(alpha=alpha, seed=seed))


def patch_urandom(monkeypatch, seed: int = 1234) -> None:
    rng = random_module.Random(seed)
    monkeypatch.setattr(
        "repro.crypto.probabilistic.os.urandom",
        lambda n: bytes(rng.getrandbits(8) for _ in range(n)),
    )


# ----------------------------------------------------------------------
# Metrics core
# ----------------------------------------------------------------------
class TestMetricsCore:
    def test_counter_identity_and_labels(self):
        registry = obs.MetricsRegistry(enabled=True)
        a = registry.counter("requests", kind="query")
        b = registry.counter("requests", kind="query")
        c = registry.counter("requests", kind="insert")
        assert a is b and a is not c
        a.inc()
        a.inc(3)
        assert a.value == 4
        assert c.value == 0

    def test_gauge_set_and_add(self):
        registry = obs.MetricsRegistry(enabled=True)
        gauge = registry.gauge("depth")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0

    def test_histogram_buckets_cumulative_and_inclusive(self):
        registry = obs.MetricsRegistry(enabled=True)
        hist = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        # An observation exactly on a bound lands in that bound's bucket
        # (Prometheus `le` semantics), values past the last bound in +Inf.
        for value in (0.005, 0.01, 0.5, 7.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(7.515)
        by_le = {bucket["le"]: bucket["count"] for bucket in snap["buckets"]}
        assert by_le[0.01] == 2  # cumulative: 0.005 and the inclusive 0.01
        assert by_le[0.1] == 2
        assert by_le[1.0] == 3
        assert by_le["+Inf"] == 4

    def test_registry_snapshot_shape(self):
        registry = obs.MetricsRegistry(enabled=True)
        registry.counter("c", kind="x").inc()
        registry.gauge("g").set(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"] == [{"name": "c", "labels": {"kind": "x"}, "value": 1}]
        assert snap["gauges"][0]["value"] == 2
        assert snap["histograms"][0]["count"] == 1
        # JSON-safe end to end.
        json.dumps(snap)

    def test_reset_keeps_handles_live(self):
        registry = obs.MetricsRegistry(enabled=True)
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.counter("c").value == 1

    def test_kill_switch_per_record_not_per_handle(self):
        registry = obs.MetricsRegistry(enabled=True)
        counter = registry.counter("c")
        hist = registry.histogram("h")
        registry.set_enabled(False)
        counter.inc()
        hist.observe(1.0)
        registry.gauge("g").set(9)
        assert counter.value == 0 and hist.count == 0
        # The cached handle resumes recording after the flip back on.
        registry.set_enabled(True)
        counter.inc()
        assert counter.value == 1

    def test_metrics_enabled_env_policy(self):
        assert obs.metrics_enabled({}) is True
        assert obs.metrics_enabled({"REPRO_METRICS": "1"}) is True
        for off in ("0", "false", "no", "off", " OFF "):
            assert obs.metrics_enabled({"REPRO_METRICS": off}) is False


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_span_nesting_and_tree(self):
        store = obs.TraceStore()
        with obs.span("outer", store=store, table="t") as outer:
            with obs.span("inner") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.children == [inner]
        docs = outer.tree_docs()
        assert [doc["name"] for doc in docs] == ["outer", "inner"]
        # Only the finished root records into the store, as one tree.
        assert store.latest() == [docs]
        assert {doc["name"] for doc in store.spans_for(outer.trace_id)} == {
            "outer",
            "inner",
        }

    def test_remote_adoption_only_without_local_parent(self):
        store = obs.TraceStore()
        adopted = obs.start_span(
            "server.dispatch", trace_id="feedc0de00000000", parent_id="1.2", store=store
        )
        assert adopted.trace_id == "feedc0de00000000"
        assert adopted.parent_id == "1.2"
        # A local parent wins over any remote ids (loopback nests naturally).
        child = obs.start_span("nested", trace_id="ffffffffffffffff", parent_id="9.9")
        assert child.trace_id == adopted.trace_id
        assert child.parent_id == adopted.span_id
        obs.finish_span(child)
        obs.finish_span(adopted)

    def test_disabled_spans_are_none_and_harmless(self):
        obs.REGISTRY.set_enabled(False)
        assert obs.start_span("x") is None
        obs.finish_span(None)
        with obs.span("y") as span_obj:
            assert span_obj is None
        assert obs.current_trace_id() == ""

    def test_tracing_switch_below_metrics_master(self):
        assert obs.tracing_active() is True
        try:
            obs.set_tracing(False)
            # Spans go dark; the metrics tier keeps recording.
            assert obs.tracing_active() is False
            assert obs.start_span("x") is None
            with obs.span("y") as span_obj:
                assert span_obj is None
            registry = obs.MetricsRegistry(enabled=True)
            registry.counter("c").inc()
            assert registry.counter("c").value == 1
        finally:
            obs.set_tracing(True)
        # REPRO_METRICS=0 remains the master: it kills tracing too.
        obs.REGISTRY.set_enabled(False)
        assert obs.tracing_active() is False

    def test_ids_never_touch_urandom(self, monkeypatch):
        def poisoned(n):  # pragma: no cover - failing is the assertion
            raise AssertionError("observability drew from os.urandom")

        monkeypatch.setattr("os.urandom", poisoned)
        trace_id = obs.mint_trace_id()
        span_id = obs.mint_span_id()
        assert len(trace_id) == 16 and span_id
        with obs.span("safe") as span_obj:
            assert span_obj.trace_id != trace_id  # fresh id, still no entropy

    def test_render_trace_merges_and_indents(self):
        spans = [
            {"trace_id": "t", "span_id": "a", "parent_id": "", "name": "client.q",
             "tags": {}, "start_wall": 1.0, "seconds": 0.002},
            {"trace_id": "t", "span_id": "b", "parent_id": "a", "name": "server.q",
             "tags": {"table": "t1"}, "start_wall": 1.001, "seconds": 0.001},
            {"trace_id": "t", "span_id": "c", "parent_id": "zz", "name": "orphan",
             "tags": {}, "start_wall": 2.0, "seconds": 0.0},
        ]
        text = obs.render_trace(spans)
        lines = text.splitlines()
        assert lines[0].startswith("- client.q ")
        assert lines[1].startswith("  - server.q ") and "[table=t1]" in lines[1]
        assert lines[2].startswith("- orphan ")  # unknown parent -> extra root


# ----------------------------------------------------------------------
# Export: Prometheus text, JSON file, periodic dumper
# ----------------------------------------------------------------------
class TestExport:
    def make_registry(self) -> obs.MetricsRegistry:
        registry = obs.MetricsRegistry(enabled=True)
        registry.counter("server.requests", kind="query_request").inc(3)
        registry.gauge("store.num_rows", table="t1").set(48)
        registry.histogram("server.request_seconds", buckets=(0.01, 1.0)).observe(0.5)
        return registry

    def test_prometheus_text_format(self):
        text = obs.to_prometheus_text(self.make_registry().snapshot())
        assert '# TYPE server_requests_total counter' in text
        assert 'server_requests_total{kind="query_request"} 3' in text
        assert 'store_num_rows{table="t1"} 48' in text
        assert 'server_request_seconds_bucket{le="0.01"} 0' in text
        assert 'server_request_seconds_bucket{le="+Inf"} 1' in text
        assert "server_request_seconds_count 1" in text

    def test_write_metrics_file_json_only(self, tmp_path):
        path = tmp_path / "metrics.json"
        obs.write_metrics_file(str(path), self.make_registry(), server="test")
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro.obs/v1"
        assert doc["server"] == "test"
        assert doc["metrics"]["counters"][0]["value"] == 3
        assert list(tmp_path.iterdir()) == [path]  # no tmp litter

    def test_write_metrics_file_prometheus_plus_json(self, tmp_path):
        path = tmp_path / "metrics.prom"
        collected = []
        obs.write_metrics_file(
            str(path), self.make_registry(), collect=lambda: collected.append(1)
        )
        assert collected == [1]  # pull-style gauges refresh before the dump
        assert "server_requests_total" in path.read_text()
        sidecar = json.loads((tmp_path / "metrics.prom.json").read_text())
        assert sidecar["format"] == "repro.obs/v1"

    def test_metrics_dumper_periodic_and_final(self, tmp_path):
        path = tmp_path / "m.json"
        dumper = obs.MetricsDumper(
            str(path), interval=0.1, registry=self.make_registry()
        )
        dumper.start()
        assert path.exists()  # first dump is synchronous on start
        first = dumper.dumps
        deadline = threading.Event()
        deadline.wait(0.35)
        dumper.stop()
        assert dumper.dumps > first  # periodic + final dumps happened
        json.loads(path.read_text())


# ----------------------------------------------------------------------
# Error ring and slow-query log
# ----------------------------------------------------------------------
class TestRings:
    def test_error_ring_caps_but_counts_all(self):
        ring = obs.ErrorRing(capacity=2)
        for index in range(5):
            ring.record("BAD_REQUEST", f"boom {index}", kind="query_request")
        assert ring.total == 5
        recent = ring.snapshot()
        assert [entry["message"] for entry in recent] == ["boom 3", "boom 4"]
        assert recent[0]["code"] == "BAD_REQUEST"

    def test_slow_query_log_threshold(self, caplog):
        log = obs.SlowQueryLog(threshold_ms=None)
        assert log.enabled is False
        with obs.span("server.q") as span_obj:
            pass
        assert log.maybe_record(span_obj) is False

        armed = obs.SlowQueryLog(threshold_ms=0.0)
        assert armed.maybe_record(None) is False  # spans disabled -> no-op
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            assert armed.maybe_record(span_obj, kind="query_request", table="t1")
        assert armed.total == 1
        entry = armed.snapshot()[0]
        assert entry["trace_id"] == span_obj.trace_id
        assert entry["tags"] == {"table": "t1"}
        assert "server.q" in entry["tree"]
        line = caplog.records[-1].getMessage()
        assert span_obj.trace_id in line and "kind=query_request" in line

        fast = obs.SlowQueryLog(threshold_ms=60_000.0)
        assert fast.maybe_record(span_obj) is False


# ----------------------------------------------------------------------
# The protocol stats surface (loopback)
# ----------------------------------------------------------------------
class TestStatsProtocol:
    def test_stats_document_end_to_end(self, zipcode_table):
        obs.REGISTRY.reset()
        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        session = RemoteOwnerSession(make_owner(), client, table_id="t1")
        session.outsource(zipcode_table)
        matches = session.query("City", "Hoboken")
        assert matches.num_rows > 0
        session.insert_rows(
            [[zipcode_table.value(0, "Zipcode"), zipcode_table.value(0, "City"),
              "street-obs", "N"]]
        )

        doc = client.stats()
        assert doc["metrics_enabled"] is True
        assert doc["uptime_seconds"] >= 0
        table = doc["tables"]["t1"]
        assert table["engine"] == "snapshot" and table["num_rows"] > 0
        assert "cache" in table

        counters = {
            (entry["name"], entry["labels"].get("kind", "")): entry["value"]
            for entry in doc["metrics"]["counters"]
        }
        assert counters[("server.requests", "outsource_request")] == 1
        assert counters[("server.requests", "query_request")] >= 1
        assert counters[("server.bytes_received", "outsource_request")] > 0
        # The delta-vs-full story falls out of the per-kind byte counters:
        # the incremental insert travelled as a delta, not a full view.
        if session.last_delta is not None:
            assert counters[("server.bytes_received", "insert_delta")] > 0
        hist_names = {entry["name"] for entry in doc["metrics"]["histograms"]}
        assert "server.request_seconds" in hist_names
        assert doc["errors"]["total"] == 0
        assert doc["slow_queries"]["threshold_ms"] is None
        assert isinstance(doc["traces"], list) and doc["traces"]

    def test_error_ring_and_error_counters(self):
        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        before = obs.REGISTRY.counter(
            "server.errors", code=ErrorCode.UNKNOWN_TABLE.value
        ).value
        with pytest.raises(ProtocolError):
            client.discover("missing")
        doc = client.stats(include_metrics=False, include_traces=False)
        assert "metrics" not in doc and "traces" not in doc
        assert doc["errors"]["total"] >= 1
        entry = doc["errors"]["recent"][-1]
        assert entry["code"] == ErrorCode.UNKNOWN_TABLE.value
        assert entry["kind"] == "discover_request"
        assert entry["trace_id"]  # dispatched under the client's trace
        after = obs.REGISTRY.counter(
            "server.errors", code=ErrorCode.UNKNOWN_TABLE.value
        ).value
        assert after == before + 1

    def test_stats_is_owner_only(self, zipcode_table):
        registry = TenantRegistry()
        owner_cred = registry.mint("acme", "owner")
        analyst_cred = registry.mint("acme", "analyst")
        server = ProtocolServer(tenants=registry)

        owner_client = ProtocolClient(LoopbackTransport(server))
        owner_client.authenticate(owner_cred)
        session = RemoteOwnerSession(
            make_owner(), owner_client, table_id="t1", credential=None
        )
        session.outsource(zipcode_table)
        assert "tables" in owner_client.stats()

        analyst_client = ProtocolClient(LoopbackTransport(server))
        analyst_client.authenticate(analyst_cred)
        with pytest.raises(ProtocolError) as excinfo:
            analyst_client.stats()
        assert excinfo.value.code == ErrorCode.FORBIDDEN.value

    def test_stats_survives_kill_switch(self, zipcode_table):
        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        RemoteOwnerSession(make_owner(), client, table_id="t1").outsource(zipcode_table)
        obs.REGISTRY.set_enabled(False)
        doc = client.stats()
        assert doc["metrics_enabled"] is False
        assert doc["tables"]["t1"]["num_rows"] > 0  # store stats stay live
        assert doc["metrics"]["enabled"] is False

    def test_collect_store_gauges(self, zipcode_table):
        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        RemoteOwnerSession(make_owner(), client, table_id="t1").outsource(zipcode_table)
        server.collect_store_gauges()
        snap = obs.REGISTRY.snapshot()
        gauges = {
            (entry["name"], entry["labels"].get("table", "")): entry["value"]
            for entry in snap["gauges"]
        }
        assert gauges[("store.num_rows", "t1")] > 0
        assert ("store.cache_hits", "t1") in gauges

    def test_stats_reports_broken_store_with_detail(self, zipcode_table):
        """Regression for the lint-surfaced `except Exception` swallow: a
        store whose stats raise a typed error is reported as unavailable
        *with the reason*, healthy tables keep their stats, and gauge
        collection skips the broken store without dying."""
        from repro.exceptions import StoreError

        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        RemoteOwnerSession(make_owner(), client, table_id="ok").outsource(zipcode_table)
        RemoteOwnerSession(make_owner(), client, table_id="bad").outsource(zipcode_table)

        broken = server.table_store("bad")
        broken.store_stats = lambda: (_ for _ in ()).throw(StoreError("segment manifest corrupt"))

        server.collect_store_gauges()  # must not raise
        doc = server.stats_doc()
        assert doc["tables"]["ok"]["num_rows"] > 0
        assert doc["tables"]["bad"]["error"] == "unavailable"
        assert "segment manifest corrupt" in doc["tables"]["bad"]["detail"]

    def test_stats_propagates_unexpected_bugs(self, zipcode_table):
        """The narrowed handler only catches (ReproError, OSError): a
        genuine bug (TypeError) in store_stats must not be swallowed."""
        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        RemoteOwnerSession(make_owner(), client, table_id="t1").outsource(zipcode_table)
        server.table_store("t1").store_stats = lambda: (_ for _ in ()).throw(TypeError("bug"))
        with pytest.raises(TypeError):
            server.stats_doc()


# ----------------------------------------------------------------------
# Trace-id propagation over the real socket transport
# ----------------------------------------------------------------------
class TestTracePropagation:
    def test_loopback_single_tree(self, zipcode_table):
        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        owner = make_owner()
        session = RemoteOwnerSession(owner, client, table_id="t1")
        session.outsource(zipcode_table)
        token = owner.derive_search_token("City", "Hoboken")
        client.call(QueryRequest(table_id="t1", attribute="City", token=token))
        trace_id = client.last_trace_id
        spans = obs.TRACES.spans_for(trace_id)
        by_name = {doc["name"]: doc for doc in spans}
        # One tree: the server's dispatch span nests under the client span,
        # and the store scan nests under the dispatch.
        assert by_name["server.query_request"]["parent_id"] == \
            by_name["client.query_request"]["span_id"]
        assert by_name["store.rows_matching"]["parent_id"] == \
            by_name["server.query_request"]["span_id"]
        assert {doc["trace_id"] for doc in spans} == {trace_id}

    def test_tracing_off_keeps_request_metrics(self, zipcode_table):
        server = ProtocolServer()
        client = ProtocolClient(LoopbackTransport(server))
        owner = make_owner()
        session = RemoteOwnerSession(owner, client, table_id="t1")
        session.outsource(zipcode_table)
        token = owner.derive_search_token("City", "Hoboken")
        requests = obs.REGISTRY.counter("server.requests", kind="query_request")
        before_requests = requests.value
        before_last = client.last_trace_id
        try:
            obs.set_tracing(False)
            client.call(QueryRequest(table_id="t1", attribute="City", token=token))
        finally:
            obs.set_tracing(True)
        # No span tree, no trace id attached — but the per-kind counters
        # and latency histogram on the server still advanced.
        assert client.last_trace_id == before_last
        assert requests.value == before_requests + 1
        assert (
            obs.REGISTRY.histogram(
                "server.request_seconds", kind="query_request"
            ).count
            >= 1
        )

    def test_socket_trace_id_reaches_server_and_slow_log(self, zipcode_table, caplog):
        server = ProtocolServer(slow_query_ms=0.0)  # every request is "slow"
        with SocketProtocolServer(server) as sock_server:
            sock_server.serve_in_background()
            owner = make_owner()
            client = ProtocolClient(SocketTransport("127.0.0.1", sock_server.port))
            session = RemoteOwnerSession(owner, client, table_id="t1")
            session.outsource(zipcode_table)
            token = owner.derive_search_token("City", "Hoboken")
            with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
                client.call(QueryRequest(table_id="t1", attribute="City", token=token))
            trace_id = client.last_trace_id
            assert trace_id

            # The client-minted id crossed the wire: the server's spans carry
            # it, and the structured slow-query log line contains it.
            assert any(
                trace_id in record.getMessage() for record in caplog.records
            ), "slow-query log line does not carry the client's trace id"
            doc = client.stats(trace_id=trace_id)
            server_spans = doc["traces"][0]
            names = {span["name"] for span in server_spans}
            assert "server.query_request" in names
            assert {span["trace_id"] for span in server_spans} == {trace_id}
            slow = doc["slow_queries"]
            assert slow["threshold_ms"] == 0.0 and slow["total"] >= 1
            assert any(
                entry["trace_id"] == trace_id for entry in slow["recent"]
            )

            # Merging the local client half with the fetched server half
            # yields one readable tree for the whole round trip.
            merged = obs.TRACES.spans_for(trace_id)
            rendered = obs.render_trace(merged)
            assert "client.query_request" in rendered
            assert "server.query_request" in rendered
            session.close()


# ----------------------------------------------------------------------
# Lock metrics are exact under concurrency
# ----------------------------------------------------------------------
class TestLockMetricsConcurrency:
    THREADS = 4
    QUERIES = 25

    def test_read_lock_counts_are_exact(self, zipcode_table):
        server = ProtocolServer()
        setup_client = ProtocolClient(LoopbackTransport(server))
        owner = make_owner()
        RemoteOwnerSession(owner, setup_client, table_id="t1").outsource(zipcode_table)
        token = owner.derive_search_token("City", "Hoboken")

        wait_hist = obs.REGISTRY.histogram(
            "store.lock_wait_seconds", mode="read", table="t1"
        )
        hold_hist = obs.REGISTRY.histogram(
            "store.lock_hold_seconds", mode="read", table="t1"
        )
        wait_before, hold_before = wait_hist.count, hold_hist.count

        errors: list[BaseException] = []
        barrier = threading.Barrier(self.THREADS, timeout=30)

        def worker():
            try:
                client = ProtocolClient(LoopbackTransport(server))
                barrier.wait()
                for _ in range(self.QUERIES):
                    result = client.call(
                        QueryRequest(table_id="t1", attribute="City", token=token)
                    )
                    assert result.row_indexes
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

        # Exactly one read acquisition per query, no lost updates: the
        # wait and hold histograms advance in lockstep by THREADS*QUERIES.
        expected = self.THREADS * self.QUERIES
        assert wait_hist.count - wait_before == expected
        assert hold_hist.count - hold_before == expected
        snap = wait_hist.snapshot()
        assert snap["buckets"][-1]["count"] == snap["count"]  # +Inf == total
        assert snap["sum"] >= 0.0


# ----------------------------------------------------------------------
# Byte identity: metrics on vs off, observability draws no entropy
# ----------------------------------------------------------------------
class TestByteIdentity:
    def ciphertext_rows(self, owner: DataOwner) -> list[tuple[str, ...]]:
        view = owner.server_view()
        return [tuple(str(value) for value in row) for row in view.rows()]

    def test_metrics_on_vs_off_identical_bytes(self, zipcode_table, monkeypatch):
        patch_urandom(monkeypatch, seed=99)
        obs.REGISTRY.set_enabled(True)
        runs_before = obs.REGISTRY.counter("pipeline.runs").value
        on_owner = make_owner()
        on_owner.outsource(zipcode_table)
        rows_on = self.ciphertext_rows(on_owner)
        # The instrumentation actually ran during the metrics-on pass.
        assert obs.REGISTRY.counter("pipeline.runs").value == runs_before + 1

        patch_urandom(monkeypatch, seed=99)
        obs.REGISTRY.set_enabled(False)
        off_owner = make_owner()
        off_owner.outsource(zipcode_table)
        rows_off = self.ciphertext_rows(off_owner)

        assert rows_on == rows_off

    def test_traced_protocol_run_identical_to_untraced(self, zipcode_table, monkeypatch):
        def run() -> list[tuple[str, ...]]:
            patch_urandom(monkeypatch, seed=7)
            server = ProtocolServer()
            client = ProtocolClient(LoopbackTransport(server))
            session = RemoteOwnerSession(make_owner(), client, table_id="t1")
            session.outsource(zipcode_table)
            store = server.table_store("t1")
            return [tuple(str(v) for v in row) for row in store.relation().rows()]

        obs.REGISTRY.set_enabled(True)
        traced = run()
        obs.REGISTRY.set_enabled(False)
        untraced = run()
        assert traced == untraced


# ----------------------------------------------------------------------
# Satellite: stage timing unification (one event stream, three consumers)
# ----------------------------------------------------------------------
class TestStageUnification:
    def test_recorder_timing_and_obs_consume_one_stream(self, zipcode_table):
        stage_hist = lambda name: obs.REGISTRY.histogram(  # noqa: E731
            "pipeline.stage_seconds", stage=name
        )
        recorder = StageRecorder()
        owner = DataOwner.from_seed(
            42, config=F2Config(alpha=0.25, seed=7), hooks=[recorder]
        )
        before = {
            name: stage_hist(name).count
            for name in ("MAX", "SSE", "SYN", "FP", "MATERIALIZE")
        }
        encrypted = owner.outsource(zipcode_table)
        # StageRecorder (the --stage-times surface) saw every stage...
        stages = [record.stage for record in recorder.records]
        for name in before:
            assert name in stages
        # ...TimingHook fed the paper's stats timers...
        assert encrypted.stats.seconds_total > 0.0
        # ...and the obs histograms advanced once per stage, from the same
        # single measurement (no second timer, no drift).
        for name, count in before.items():
            assert stage_hist(name).count == count + 1
        materialize = next(r for r in recorder.records if r.stage == "MATERIALIZE")
        assert materialize.cells > 0
        cells = obs.REGISTRY.counter("pipeline.stage_cells", stage="MATERIALIZE")
        assert cells.value >= materialize.cells


# ----------------------------------------------------------------------
# CLI stats command against a live server
# ----------------------------------------------------------------------
class TestStatsCli:
    def test_cli_stats_json(self, zipcode_table, capsys):
        from repro.cli import main

        server = ProtocolServer()
        with SocketProtocolServer(server) as sock_server:
            sock_server.serve_in_background()
            client = ProtocolClient(SocketTransport("127.0.0.1", sock_server.port))
            RemoteOwnerSession(make_owner(), client, table_id="t1").outsource(
                zipcode_table
            )
            code = main(["stats", "--port", str(sock_server.port), "--json"])
            assert code == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["tables"]["t1"]["num_rows"] > 0
            code = main(["stats", "--port", str(sock_server.port)])
            assert code == 0
            out = capsys.readouterr().out
            assert "tables:" in out and "t1:" in out

"""Tests for the structural alpha-security verification and leakage measures."""

import pytest

from repro.core.config import F2Config
from repro.core.encrypted import EcgSummary
from repro.core.scheme import F2Scheme
from repro.core.security import (
    ciphertext_frequency_distribution,
    frequency_hiding_score,
    verify_alpha_security,
)
from repro.crypto.deterministic import DeterministicCipher
from repro.crypto.keys import KeyGen
from repro.exceptions import SecurityViolation
from repro.relational.table import Relation


class TestVerifyAlphaSecurity:
    def test_valid_encryption_passes(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        report = verify_alpha_security(encrypted)
        assert report.satisfied
        assert report.groups_checked == len(encrypted.ecg_summaries)
        report.raise_if_violated()  # must not raise

    def test_stricter_alpha_than_encrypted_fails(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)  # alpha = 0.25 -> k = 4
        report = verify_alpha_security(encrypted, alpha=0.05)  # requires k = 20
        assert not report.satisfied
        with pytest.raises(SecurityViolation):
            report.raise_if_violated()

    def test_detects_undersized_group(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        encrypted.ecg_summaries.append(
            EcgSummary(
                mas_attributes=("Zipcode", "City"),
                group_index=99,
                num_members=1,
                num_fake_members=0,
                target_frequency=2,
                instance_frequencies=(2,),
                member_sizes=(2,),
            )
        )
        assert not verify_alpha_security(encrypted).satisfied

    def test_detects_heterogeneous_frequencies(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        encrypted.ecg_summaries.append(
            EcgSummary(
                mas_attributes=("Zipcode", "City"),
                group_index=98,
                num_members=4,
                num_fake_members=0,
                target_frequency=3,
                instance_frequencies=(3, 3, 2),
                member_sizes=(3, 3, 2),
            )
        )
        assert not verify_alpha_security(encrypted).satisfied

    def test_alpha_defaults_to_config(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        report = verify_alpha_security(encrypted)
        assert report.alpha == encrypted.config.alpha


class TestLeakageMeasures:
    def test_frequency_distribution_counts(self):
        relation = Relation(["A"], [["x"], ["x"], ["y"]])
        counts = ciphertext_frequency_distribution(relation, "A")
        assert counts["x"] == 2 and counts["y"] == 1

    def test_deterministic_encryption_has_zero_hiding_score(self, zipcode_table):
        cipher = DeterministicCipher(KeyGen.symmetric_from_seed(1))
        encrypted = Relation(zipcode_table.schema)
        for row in zipcode_table.rows():
            encrypted.append([cipher.encrypt(value) for value in row])
        score = frequency_hiding_score(zipcode_table, encrypted, "Zipcode")
        assert score == pytest.approx(0.0, abs=1e-9)

    def test_f2_encryption_has_positive_hiding_score(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        score = frequency_hiding_score(zipcode_table, encrypted.relation, "Zipcode")
        assert score > 0.2

    def test_score_of_empty_column_is_zero(self):
        empty = Relation(["A"])
        assert frequency_hiding_score(empty, empty, "A") == 0.0

"""Tests for the probabilistic and deterministic cell ciphers."""

import pytest

from repro.crypto.deterministic import DeterministicCipher, _pad, _unpad
from repro.crypto.keys import KeyGen
from repro.crypto.probabilistic import Ciphertext, ProbabilisticCipher
from repro.exceptions import DecryptionError, EncryptionError


@pytest.fixture
def key():
    return KeyGen.symmetric_from_seed(123)


class TestProbabilisticCipher:
    def test_roundtrip(self, key):
        cipher = ProbabilisticCipher(key)
        assert cipher.decrypt(cipher.encrypt("hello world")) == "hello world"

    def test_roundtrip_non_string_values(self, key):
        cipher = ProbabilisticCipher(key)
        assert cipher.decrypt(cipher.encrypt(12345)) == "12345"

    def test_same_plaintext_different_ciphertexts(self, key):
        cipher = ProbabilisticCipher(key)
        assert cipher.encrypt("value") != cipher.encrypt("value")

    def test_variant_makes_encryption_deterministic(self, key):
        cipher = ProbabilisticCipher(key)
        assert cipher.encrypt("value", variant="v1") == cipher.encrypt("value", variant="v1")

    def test_different_variants_differ(self, key):
        cipher = ProbabilisticCipher(key)
        assert cipher.encrypt("value", variant="v1") != cipher.encrypt("value", variant="v2")

    def test_different_plaintexts_same_variant_differ(self, key):
        cipher = ProbabilisticCipher(key)
        assert cipher.encrypt("a", variant="v") != cipher.encrypt("b", variant="v")

    def test_decrypt_with_wrong_key_fails_or_differs(self, key):
        cipher = ProbabilisticCipher(key)
        other = ProbabilisticCipher(KeyGen.symmetric_from_seed(999))
        ciphertext = cipher.encrypt("payload")
        try:
            assert other.decrypt(ciphertext) != "payload"
        except DecryptionError:
            pass  # invalid UTF-8 after XOR with the wrong pad is also correct

    def test_decrypt_rejects_non_ciphertext(self, key):
        with pytest.raises(DecryptionError):
            ProbabilisticCipher(key).decrypt("not-a-ciphertext")

    def test_unicode_roundtrip(self, key):
        cipher = ProbabilisticCipher(key)
        assert cipher.decrypt(cipher.encrypt("café ☕")) == "café ☕"

    def test_empty_string_roundtrip(self, key):
        cipher = ProbabilisticCipher(key)
        assert cipher.decrypt(cipher.encrypt("")) == ""

    def test_nonce_length_configurable(self, key):
        cipher = ProbabilisticCipher(key, nonce_length=24)
        assert len(cipher.encrypt("x").nonce) == 24

    def test_too_short_nonce_rejected(self, key):
        with pytest.raises(EncryptionError):
            ProbabilisticCipher(key, nonce_length=4)

    def test_ciphertext_text_roundtrip(self, key):
        ciphertext = ProbabilisticCipher(key).encrypt("abc")
        assert Ciphertext.from_text(str(ciphertext)) == ciphertext

    def test_ciphertext_from_malformed_text(self):
        with pytest.raises(DecryptionError):
            Ciphertext.from_text("no-colon-here")

    def test_ciphertexts_are_hashable(self, key):
        cipher = ProbabilisticCipher(key)
        values = {cipher.encrypt("a", variant="v"), cipher.encrypt("a", variant="v")}
        assert len(values) == 1


class TestDeterministicCipher:
    @pytest.mark.parametrize("backend", ["prf", "aes"])
    def test_roundtrip(self, key, backend):
        cipher = DeterministicCipher(key, backend=backend)
        assert cipher.decrypt(cipher.encrypt("hello")) == "hello"

    @pytest.mark.parametrize("backend", ["prf", "aes"])
    def test_determinism(self, key, backend):
        cipher = DeterministicCipher(key, backend=backend)
        assert cipher.encrypt("same") == cipher.encrypt("same")

    @pytest.mark.parametrize("backend", ["prf", "aes"])
    def test_distinct_plaintexts_distinct_ciphertexts(self, key, backend):
        cipher = DeterministicCipher(key, backend=backend)
        assert cipher.encrypt("a") != cipher.encrypt("b")

    def test_unknown_backend_rejected(self, key):
        with pytest.raises(EncryptionError):
            DeterministicCipher(key, backend="rot13")

    def test_decrypt_rejects_non_ciphertext(self, key):
        with pytest.raises(DecryptionError):
            DeterministicCipher(key).decrypt(42)

    def test_frequency_preservation_property(self, key):
        """Deterministic encryption preserves the frequency histogram exactly."""
        from collections import Counter

        cipher = DeterministicCipher(key)
        plaintexts = ["x"] * 5 + ["y"] * 3 + ["z"]
        ciphertexts = [cipher.encrypt(value) for value in plaintexts]
        assert sorted(Counter(plaintexts).values()) == sorted(Counter(ciphertexts).values())


class TestPadding:
    def test_pad_unpad_roundtrip(self):
        for length in range(0, 40):
            message = bytes(range(length % 256))[:length]
            assert _unpad(_pad(message)) == message

    def test_pad_length_multiple_of_block(self):
        for length in range(0, 40):
            assert len(_pad(b"x" * length)) % 16 == 0

    def test_unpad_rejects_garbage(self):
        with pytest.raises(DecryptionError):
            _unpad(b"")
        with pytest.raises(DecryptionError):
            _unpad(b"\x00" * 16)
        with pytest.raises(DecryptionError):
            _unpad(b"abc\x05")

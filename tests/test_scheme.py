"""End-to-end tests of the F2 scheme: encryption, preservation, decryption."""

import pytest

from repro.core.config import F2Config
from repro.core.scheme import F2Scheme
from repro.core.security import verify_alpha_security
from repro.crypto.keys import KeyGen
from repro.crypto.probabilistic import Ciphertext
from repro.exceptions import DecryptionError, EncryptionError
from repro.fd.discovery import discover_fds_naive
from repro.fd.tane import tane
from repro.fd.verify import fds_equivalent
from repro.relational.table import Relation

from tests.conftest import make_random_table


def roundtrip_rows(relation: Relation) -> list[tuple[str, ...]]:
    return sorted(tuple(str(value) for value in row) for row in relation.rows())


class TestEncryptBasics:
    def test_encrypt_empty_relation_rejected(self, seeded_scheme):
        with pytest.raises(EncryptionError):
            seeded_scheme.encrypt(Relation(["A"]))

    def test_ciphertext_table_has_same_schema(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        assert encrypted.relation.schema == zipcode_table.schema

    def test_every_cell_is_a_ciphertext(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        for row in encrypted.relation.rows():
            assert all(isinstance(cell, Ciphertext) for cell in row)

    def test_ciphertext_has_at_least_original_rows(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        assert encrypted.num_rows >= zipcode_table.num_rows
        assert encrypted.num_original_rows == zipcode_table.num_rows

    def test_provenance_covers_every_row(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        assert len(encrypted.provenance) == encrypted.num_rows

    def test_stats_rows_match_relation(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        assert encrypted.stats.rows_encrypted == encrypted.num_rows

    def test_step_timings_recorded(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        timings = encrypted.stats.step_seconds()
        assert all(seconds >= 0 for seconds in timings.values())
        assert encrypted.stats.seconds_total > 0

    def test_describe_is_json_friendly(self, seeded_scheme, zipcode_table):
        import json

        encrypted = seeded_scheme.encrypt(zipcode_table)
        assert json.dumps(encrypted.describe(), default=str)

    def test_plaintext_values_never_appear_in_ciphertext(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        plaintext_values = {str(v) for row in zipcode_table.rows() for v in row}
        ciphertext_values = {str(v) for row in encrypted.relation.rows() for v in row}
        assert not plaintext_values & ciphertext_values


class TestFrequencyHiding:
    def test_same_plaintext_value_maps_to_multiple_ciphertexts(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        # Zipcode has 3 plaintext values over 48 rows; after F2 the ciphertext
        # column must contain strictly more distinct values than the plaintext.
        plain_domain = len(zipcode_table.distinct_values("Zipcode"))
        cipher_domain = len(encrypted.relation.distinct_values("Zipcode"))
        assert cipher_domain > plain_domain

    def test_ciphertext_frequencies_flattened(self, seeded_scheme, zipcode_table):
        from collections import Counter

        encrypted = seeded_scheme.encrypt(zipcode_table)
        plain_max = max(Counter(zipcode_table.column("Zipcode")).values())
        cipher_max = max(Counter(encrypted.relation.column("Zipcode")).values())
        assert cipher_max < plain_max

    def test_alpha_security_structural_check(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        report = verify_alpha_security(encrypted)
        assert report.satisfied, report.violations


class TestFdPreservation:
    @pytest.mark.parametrize("alpha", [0.5, 0.34, 0.2])
    def test_preserved_on_zipcode_table(self, zipcode_table, alpha):
        scheme = F2Scheme(key=KeyGen.symmetric_from_seed(1), config=F2Config(alpha=alpha, seed=2))
        encrypted = scheme.encrypt(zipcode_table)
        assert fds_equivalent(tane(zipcode_table), tane(encrypted.server_view()))

    def test_preserved_on_figure1(self, seeded_scheme, paper_figure1_table):
        encrypted = seeded_scheme.encrypt(paper_figure1_table)
        assert fds_equivalent(tane(paper_figure1_table), tane(encrypted.server_view()))

    def test_preserved_on_figure3_with_overlapping_mas(self, seeded_scheme, paper_figure3_table):
        encrypted = seeded_scheme.encrypt(paper_figure3_table)
        assert fds_equivalent(tane(paper_figure3_table), tane(encrypted.server_view()))

    def test_preserved_on_figure4_no_false_positive(self, seeded_scheme, paper_figure4_table):
        encrypted = seeded_scheme.encrypt(paper_figure4_table)
        assert fds_equivalent(tane(paper_figure4_table), tane(encrypted.server_view()))

    @pytest.mark.parametrize("seed", range(8))
    def test_preserved_on_random_tables(self, seed):
        table = make_random_table(seed + 300, num_attributes=4)
        scheme = F2Scheme(
            key=KeyGen.symmetric_from_seed(seed),
            config=F2Config(alpha=0.34, split_factor=2, seed=seed),
        )
        encrypted = scheme.encrypt(table)
        assert fds_equivalent(
            discover_fds_naive(table), discover_fds_naive(encrypted.server_view())
        )

    @pytest.mark.parametrize("split_factor", [1, 2, 3])
    def test_preserved_across_split_factors(self, zipcode_table, split_factor):
        scheme = F2Scheme(
            key=KeyGen.symmetric_from_seed(11),
            config=F2Config(alpha=0.34, split_factor=split_factor, seed=3),
        )
        encrypted = scheme.encrypt(zipcode_table)
        assert fds_equivalent(tane(zipcode_table), tane(encrypted.server_view()))

    def test_strict_mode_also_preserves(self, strict_scheme, zipcode_table):
        encrypted = strict_scheme.encrypt(zipcode_table)
        assert fds_equivalent(tane(zipcode_table), tane(encrypted.server_view()))


class TestDecryption:
    def test_roundtrip_zipcode_table(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        decrypted = seeded_scheme.decrypt(encrypted)
        assert roundtrip_rows(decrypted) == roundtrip_rows(zipcode_table)

    def test_roundtrip_with_conflicts(self, seeded_scheme, paper_figure3_table):
        encrypted = seeded_scheme.encrypt(paper_figure3_table)
        decrypted = seeded_scheme.decrypt(encrypted)
        assert roundtrip_rows(decrypted) == roundtrip_rows(paper_figure3_table)

    def test_decrypt_single_cell(self, seeded_scheme, zipcode_table):
        encrypted = seeded_scheme.encrypt(zipcode_table)
        groups = encrypted.original_row_groups()
        row_index = groups[0][0]
        provenance = encrypted.provenance[row_index]
        attribute = next(iter(provenance.authentic_attributes))
        cell = encrypted.relation.value(row_index, attribute)
        assert seeded_scheme.decrypt_cell(cell) == str(
            zipcode_table.value(provenance.source_row, attribute)
        )

    def test_wrong_key_cannot_decrypt(self, zipcode_table):
        owner = F2Scheme(key=KeyGen.symmetric_from_seed(1), config=F2Config(seed=1))
        attacker = F2Scheme(key=KeyGen.symmetric_from_seed(2), config=F2Config(seed=1))
        encrypted = owner.encrypt(zipcode_table)
        try:
            recovered = attacker.decrypt(encrypted)
        except DecryptionError:
            return
        assert roundtrip_rows(recovered) != roundtrip_rows(zipcode_table)

    def test_decrypt_cell_rejects_plain_value(self, seeded_scheme):
        with pytest.raises(DecryptionError):
            seeded_scheme.decrypt_cell("plaintext")


class TestSchemeConfigurationVariants:
    def test_without_conflict_resolution(self, paper_figure3_table):
        config = F2Config(alpha=0.5, resolve_conflicts=False, seed=1)
        scheme = F2Scheme(key=KeyGen.symmetric_from_seed(7), config=config)
        encrypted = scheme.encrypt(paper_figure3_table)
        assert encrypted.stats.rows_added_conflict == 0

    def test_alpha_one_needs_no_fakes(self, zipcode_table):
        config = F2Config(alpha=1.0, seed=1)
        scheme = F2Scheme(key=KeyGen.symmetric_from_seed(7), config=config)
        encrypted = scheme.encrypt(zipcode_table)
        assert encrypted.stats.num_fake_ecs == 0

    def test_smaller_alpha_means_more_artificial_rows(self, zipcode_table):
        def rows_added(alpha):
            scheme = F2Scheme(
                key=KeyGen.symmetric_from_seed(7), config=F2Config(alpha=alpha, seed=1)
            )
            return scheme.encrypt(zipcode_table).stats.rows_added_total

        assert rows_added(0.1) >= rows_added(0.5)

    def test_random_key_generated_when_missing(self, zipcode_table):
        scheme = F2Scheme(config=F2Config(alpha=0.5))
        encrypted = scheme.encrypt(zipcode_table)
        assert encrypted.num_rows >= zipcode_table.num_rows

    def test_masses_recorded_in_output(self, seeded_scheme, paper_figure3_table):
        encrypted = seeded_scheme.encrypt(paper_figure3_table)
        assert {str(mas) for mas in encrypted.masses} == {"{A, B}", "{B, C}"}

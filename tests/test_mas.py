"""Tests for MAS (maximal attribute set) discovery — Step 1 of F2."""

from itertools import chain, combinations

import pytest

from repro.exceptions import DiscoveryError
from repro.fd.mas import (
    MaximalAttributeSet,
    find_mas_with_stats,
    find_maximal_attribute_sets,
)
from repro.relational.table import Relation

from tests.conftest import make_random_table


def brute_force_mas(relation: Relation) -> set[frozenset[str]]:
    """Reference implementation: enumerate every subset (exponential)."""
    attributes = list(relation.attributes)

    def non_unique(attrs) -> bool:
        return any(count > 1 for count in relation.value_frequencies(attrs).values())

    all_subsets = [
        frozenset(subset)
        for size in range(1, len(attributes) + 1)
        for subset in combinations(attributes, size)
    ]
    non_unique_sets = {subset for subset in all_subsets if non_unique(subset)}
    return {
        subset
        for subset in non_unique_sets
        if not any(subset < other for other in non_unique_sets)
    }


class TestMasOnPaperExamples:
    def test_figure1_single_mas(self, paper_figure1_table):
        masses = find_maximal_attribute_sets(paper_figure1_table)
        assert {mas.as_set for mas in masses} == {frozenset({"A", "B", "C"})}

    def test_figure3_two_overlapping_mas(self, paper_figure3_table):
        masses = find_maximal_attribute_sets(paper_figure3_table)
        assert {mas.as_set for mas in masses} == {
            frozenset({"A", "B"}),
            frozenset({"B", "C"}),
        }

    def test_figure4_single_mas(self, paper_figure4_table):
        masses = find_maximal_attribute_sets(paper_figure4_table)
        assert {mas.as_set for mas in masses} == {frozenset({"A", "B"})}

    def test_mas_contains_every_fd(self, zipcode_table):
        # Property stated in Section 3.1: every FD's attributes fit in a MAS.
        from repro.fd.tane import tane

        masses = find_maximal_attribute_sets(zipcode_table)
        for fd in tane(zipcode_table):
            if all(
                count <= 1
                for count in zipcode_table.value_frequencies(fd.lhs).values()
            ):
                continue  # key-based FDs need not be covered by a MAS
            assert any(fd.attributes <= mas.as_set for mas in masses)


class TestMasStrategies:
    @pytest.mark.parametrize("seed", range(10))
    def test_apriori_matches_brute_force(self, seed):
        table = make_random_table(seed, num_attributes=4)
        found = {mas.as_set for mas in find_maximal_attribute_sets(table, strategy="apriori")}
        assert found == brute_force_mas(table)

    @pytest.mark.parametrize("seed", range(10))
    def test_ducc_matches_brute_force(self, seed):
        table = make_random_table(seed, num_attributes=5)
        found = {mas.as_set for mas in find_maximal_attribute_sets(table, strategy="ducc")}
        assert found == brute_force_mas(table)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_strategies_agree(self, seed):
        table = make_random_table(seed + 50, num_attributes=6)
        apriori = {mas.as_set for mas in find_maximal_attribute_sets(table, strategy="apriori")}
        ducc = {mas.as_set for mas in find_maximal_attribute_sets(table, strategy="ducc")}
        assert apriori == ducc

    def test_all_unique_table_has_no_mas(self):
        table = Relation(["A", "B"], [["a1", "b1"], ["a2", "b2"], ["a3", "b3"]])
        assert find_maximal_attribute_sets(table) == []

    def test_all_identical_rows(self):
        table = Relation(["A", "B"], [["x", "y"]] * 4)
        masses = find_maximal_attribute_sets(table)
        assert {mas.as_set for mas in masses} == {frozenset({"A", "B"})}

    def test_unknown_strategy_rejected(self, paper_figure1_table):
        with pytest.raises(DiscoveryError):
            find_maximal_attribute_sets(paper_figure1_table, strategy="magic")

    def test_empty_relation_rejected(self):
        with pytest.raises(DiscoveryError):
            find_maximal_attribute_sets(Relation(["A"]))


class TestMasResult:
    def test_stats_counters(self, paper_figure3_table):
        result = find_mas_with_stats(paper_figure3_table)
        assert result.partitions_computed > 0
        assert result.elapsed_seconds >= 0
        assert result.strategy in {"apriori", "ducc"}

    def test_overlapping_pairs(self, paper_figure3_table):
        result = find_mas_with_stats(paper_figure3_table)
        assert len(result.overlapping_pairs()) == 1

    def test_descriptor_fields(self, paper_figure4_table):
        (mas,) = find_maximal_attribute_sets(paper_figure4_table)
        assert isinstance(mas, MaximalAttributeSet)
        assert mas.attributes == ("A", "B")
        assert mas.num_equivalence_classes == 4
        assert mas.num_duplicate_classes == 4
        assert len(mas) == 2
        assert str(mas) == "{A, B}"

    def test_overlap_predicate(self):
        first = MaximalAttributeSet(("A", "B"), 1, 1)
        second = MaximalAttributeSet(("B", "C"), 1, 1)
        third = MaximalAttributeSet(("C", "D"), 1, 1)
        assert first.overlaps(second)
        assert not first.overlaps(third)

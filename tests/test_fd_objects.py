"""Unit tests for FD objects and FD-set algebra."""

import pytest

from repro.exceptions import DiscoveryError
from repro.fd.fd import FDSet, FunctionalDependency


class TestFunctionalDependency:
    def test_lhs_is_sorted_and_deduplicated(self):
        fd = FunctionalDependency(["B", "A", "B"], "C")
        assert fd.lhs == ("A", "B")

    def test_trivial_fd_rejected(self):
        with pytest.raises(DiscoveryError):
            FunctionalDependency(["A", "B"], "A")

    def test_empty_lhs_rejected(self):
        with pytest.raises(DiscoveryError):
            FunctionalDependency([], "A")

    def test_empty_rhs_rejected(self):
        with pytest.raises(DiscoveryError):
            FunctionalDependency(["A"], "")

    def test_attributes_property(self):
        fd = FunctionalDependency(["A", "B"], "C")
        assert fd.attributes == frozenset({"A", "B", "C"})

    def test_str_format(self):
        assert str(FunctionalDependency(["A"], "B")) == "{A} -> B"

    def test_parse_comma_separated(self):
        fd = FunctionalDependency.parse("A, B -> C")
        assert fd == FunctionalDependency(["A", "B"], "C")

    def test_parse_with_braces(self):
        fd = FunctionalDependency.parse("{Zip} -> {City}")
        assert fd == FunctionalDependency(["Zip"], "City")

    def test_parse_without_arrow_raises(self):
        with pytest.raises(DiscoveryError):
            FunctionalDependency.parse("A B C")

    def test_hashable_and_orderable(self):
        first = FunctionalDependency(["A"], "B")
        second = FunctionalDependency(["A"], "C")
        assert len({first, second, FunctionalDependency(["A"], "B")}) == 2
        assert sorted([second, first])[0] == first


class TestFDSet:
    @pytest.fixture
    def chain(self) -> FDSet:
        return FDSet(
            [
                FunctionalDependency(["A"], "B"),
                FunctionalDependency(["B"], "C"),
            ]
        )

    def test_add_and_contains(self, chain):
        fd = FunctionalDependency(["C"], "D")
        chain.add(fd)
        assert fd in chain
        assert len(chain) == 3

    def test_closure_follows_chain(self, chain):
        assert chain.closure(["A"]) == frozenset({"A", "B", "C"})

    def test_closure_of_unrelated_attribute(self, chain):
        assert chain.closure(["C"]) == frozenset({"C"})

    def test_implies_transitive_fd(self, chain):
        assert chain.implies(FunctionalDependency(["A"], "C"))

    def test_does_not_imply_reverse(self, chain):
        assert not chain.implies(FunctionalDependency(["C"], "A"))

    def test_equivalence_of_different_covers(self, chain):
        other = FDSet(
            [
                FunctionalDependency(["A"], "B"),
                FunctionalDependency(["B"], "C"),
                FunctionalDependency(["A"], "C"),  # redundant
            ]
        )
        assert chain.equivalent_to(other)
        assert other.equivalent_to(chain)

    def test_non_equivalence(self, chain):
        other = FDSet([FunctionalDependency(["A"], "B")])
        assert not chain.equivalent_to(other)

    def test_minimal_cover_removes_redundant_fd(self):
        fds = FDSet(
            [
                FunctionalDependency(["A"], "B"),
                FunctionalDependency(["B"], "C"),
                FunctionalDependency(["A"], "C"),
            ]
        )
        cover = fds.minimal_cover()
        assert len(cover) == 2
        assert cover.equivalent_to(fds)

    def test_minimal_cover_left_reduces(self):
        fds = FDSet(
            [
                FunctionalDependency(["A"], "B"),
                FunctionalDependency(["A", "C"], "B"),
            ]
        )
        cover = fds.minimal_cover()
        assert FunctionalDependency(["A"], "B") in cover
        assert FunctionalDependency(["A", "C"], "B") not in cover

    def test_restricted_to(self, chain):
        restricted = chain.restricted_to(["A", "B"])
        assert list(restricted) == [FunctionalDependency(["A"], "B")]

    def test_maximal_lhs_only(self):
        fds = FDSet(
            [
                FunctionalDependency(["A"], "C"),
                FunctionalDependency(["A", "B"], "C"),
                FunctionalDependency(["B"], "D"),
            ]
        )
        maximal = fds.maximal_lhs_only()
        assert FunctionalDependency(["A", "B"], "C") in maximal
        assert FunctionalDependency(["A"], "C") not in maximal
        assert FunctionalDependency(["B"], "D") in maximal

    def test_iteration_is_sorted(self, chain):
        assert list(chain) == sorted(chain.as_set())

    def test_equality(self, chain):
        assert chain == FDSet(chain.as_set())
        assert chain != FDSet()

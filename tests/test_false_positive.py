"""Tests for Step 4: false-positive FD elimination."""

import pytest

from repro.core.config import F2Config
from repro.core.false_positive import build_violation_pairs, eliminate_false_positives
from repro.core.plan import FreshValueFactory
from repro.core.scheme import F2Scheme
from repro.crypto.keys import KeyGen
from repro.fd.fd import FunctionalDependency
from repro.fd.tane import tane
from repro.fd.verify import violating_row_pairs
from repro.relational.table import Relation

from tests.test_conflict import build_mas_plans


@pytest.fixture
def factory() -> FreshValueFactory:
    return FreshValueFactory(seed=5)


class TestEliminationOnFigure4:
    """The paper's Example 3.1 / Figure 4: A -> B must not appear in the output."""

    def test_nodes_triggered(self, paper_figure4_table, factory):
        config = F2Config(alpha=1 / 3)
        plans = build_mas_plans(paper_figure4_table, config, factory)
        result = eliminate_false_positives(
            paper_figure4_table, plans, config.group_size, factory
        )
        triggered = {str(node) for _, node in result.triggered_nodes}
        assert "{A}:B" in triggered

    def test_k_pairs_inserted_per_node(self, paper_figure4_table, factory):
        config = F2Config(alpha=1 / 3)
        plans = build_mas_plans(paper_figure4_table, config, factory)
        result = eliminate_false_positives(
            paper_figure4_table, plans, config.group_size, factory
        )
        # Figure 4 (c): alpha = 1/3 means k = 3 pairs = 6 records per node.
        assert result.rows_added == result.num_triggered * 2 * config.group_size

    def test_without_step4_false_positive_appears(self, paper_figure4_table):
        config = F2Config(alpha=1 / 3, eliminate_false_positives=False, seed=1)
        scheme = F2Scheme(key=KeyGen.symmetric_from_seed(0), config=config)
        encrypted = scheme.encrypt(paper_figure4_table)
        cipher_fds = tane(encrypted.server_view())
        assert cipher_fds.implies(FunctionalDependency(["A"], "B"))

    def test_with_step4_false_positive_removed(self, paper_figure4_table):
        config = F2Config(alpha=1 / 3, seed=1)
        scheme = F2Scheme(key=KeyGen.symmetric_from_seed(0), config=config)
        encrypted = scheme.encrypt(paper_figure4_table)
        cipher_fds = tane(encrypted.server_view())
        # A -> B does not hold in D and must not hold in the ciphertext either;
        # B -> A *does* hold in D (every B value maps to a single A value) and
        # must survive.
        assert not cipher_fds.implies(FunctionalDependency(["A"], "B"))
        assert cipher_fds.implies(FunctionalDependency(["B"], "A"))


class TestEliminationGeneral:
    def test_no_insertion_when_fd_holds(self, paper_figure1_table, factory):
        """Figure 1: A -> B holds, so the node {A}:B must not trigger."""
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure1_table, config, factory)
        result = eliminate_false_positives(
            paper_figure1_table, plans, config.group_size, factory
        )
        triggered = {str(node) for _, node in result.triggered_nodes}
        assert "{A}:B" not in triggered
        assert "{B}:A" not in triggered

    def test_descendants_of_triggered_nodes_are_skipped(self, factory):
        # B -> C and A -> C are both violated; the top node {A,B}:C already
        # covers them, so only the maximal node triggers.
        relation = Relation(
            ["A", "B", "C"],
            [
                ["a1", "b1", "c1"],
                ["a1", "b1", "c2"],
                ["a1", "b1", "c1"],
                ["a2", "b2", "c3"],
                ["a2", "b2", "c3"],
            ],
        )
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(relation, config, factory)
        result = eliminate_false_positives(relation, plans, config.group_size, factory)
        triggered = [str(node) for attrs, node in result.triggered_nodes]
        assert "{A, B}:C" in triggered
        assert "{A}:C" not in triggered and "{B}:C" not in triggered

    def test_single_attribute_mas_adds_nothing(self, factory):
        relation = Relation(["A", "B"], [["a1", "b1"], ["a1", "b2"], ["a2", "b3"]])
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(relation, config, factory)
        single_attribute_plans = [plan for plan in plans if len(plan.attributes) == 1]
        result = eliminate_false_positives(
            relation, single_attribute_plans, config.group_size, factory
        )
        assert result.rows_added == 0

    def test_artificial_records_have_frequency_one_outside_shared_pattern(
        self, paper_figure4_table, factory
    ):
        config = F2Config(alpha=0.5)
        plans = build_mas_plans(paper_figure4_table, config, factory)
        result = eliminate_false_positives(
            paper_figure4_table, plans, config.group_size, factory
        )
        tokens = [
            cell.token
            for plan in result.row_plans
            for cell in plan.cells.values()
        ]
        # Every token appears at most twice (shared within one pair only).
        from collections import Counter

        assert max(Counter(tokens).values()) <= 2


class TestViolationPairs:
    def test_pairs_mimic_agreement_pattern(self, zipcode_table, factory):
        fd = FunctionalDependency(["City"], "Zipcode")
        witnesses = violating_row_pairs(zipcode_table, fd, limit=2)
        assert witnesses
        pairs = build_violation_pairs(zipcode_table, witnesses, group_size=2, fresh_factory=factory)
        assert len(pairs) == 4  # 2 pairs of 2 records
        first, second = pairs[0], pairs[1]
        template_first, template_second = witnesses[0]
        for attribute in zipcode_table.attributes:
            same_in_template = zipcode_table.value(template_first, attribute) == zipcode_table.value(
                template_second, attribute
            )
            same_in_artificial = first.cells[attribute] == second.cells[attribute]
            assert same_in_template == same_in_artificial

    def test_no_witnesses_no_pairs(self, zipcode_table, factory):
        assert build_violation_pairs(zipcode_table, [], group_size=3, fresh_factory=factory) == []

    def test_provenance_kind(self, zipcode_table, factory):
        fd = FunctionalDependency(["City"], "Zipcode")
        witnesses = violating_row_pairs(zipcode_table, fd, limit=1)
        pairs = build_violation_pairs(zipcode_table, witnesses, group_size=1, fresh_factory=factory)
        assert all(plan.provenance.kind == "false_positive" for plan in pairs)

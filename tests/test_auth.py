"""Tests of the authenticated multi-tenant session layer (PR 5).

Covers the tenant registry (mint/rotate/revoke + persistence), credential
tokens, the Hello handshake, signed-frame verification (signatures, sequence
numbers, replay), capability enforcement, per-tenant namespacing, and —
over the *real socket transport* — the distinct ``ErrorCode`` each class of
bad request is rejected with.
"""

import pytest

from repro.api import (
    Credential,
    DataOwner,
    ErrorCode,
    ErrorReply,
    Hello,
    HelloAck,
    LoopbackTransport,
    Message,
    ProtocolClient,
    ProtocolServer,
    RemoteOwnerSession,
    SignedEnvelope,
    SocketProtocolServer,
    SocketTransport,
    TenantRegistry,
)
from repro.api.auth import sign_frame, verify_frame
from repro.core.config import F2Config
from repro.exceptions import AuthError, ProtocolError
from repro.wire import WIRE_FORMS


def make_owner(key_seed: int = 42, alpha: float = 0.25, seed: int = 7) -> DataOwner:
    return DataOwner.from_seed(key_seed, config=F2Config(alpha=alpha, seed=seed))


@pytest.fixture
def registry() -> TenantRegistry:
    return TenantRegistry()


@pytest.fixture
def tenanted_server(registry) -> ProtocolServer:
    return ProtocolServer(tenants=registry)


def loopback(server: ProtocolServer) -> ProtocolClient:
    return ProtocolClient(LoopbackTransport(server))


# ----------------------------------------------------------------------
# Credentials and the registry
# ----------------------------------------------------------------------
class TestCredential:
    def test_token_roundtrip(self):
        credential = Credential(
            tenant_id="acme", capability="analyst", secret=b"\x01" * 32, token_id="k0007"
        )
        assert Credential.from_token(credential.to_token()) == credential

    @pytest.mark.parametrize(
        "token",
        [
            "",
            "nope",
            "f2tok1.acme.owner.k0001",  # missing secret
            "f2tok1.acme.owner.k0001.zz",  # non-hex secret
            "f2tok1.acme.owner.k0001.",  # empty secret
            "f2tok1.acme.superuser.k0001.0a",  # unknown capability
            "f2tok1.../evil.owner.k0001.0a",  # path-unsafe tenant
        ],
    )
    def test_malformed_tokens_rejected(self, token):
        with pytest.raises((AuthError, ProtocolError)):
            Credential.from_token(token)


class TestTenantRegistry:
    def test_mint_rotate_revoke(self, registry):
        first = registry.mint("acme", "owner")
        assert first.tenant_id == "acme"
        assert len(first.secret) == 32
        rotated = registry.rotate("acme", "owner")
        assert rotated.secret != first.secret
        assert rotated.token_id != first.token_id
        assert registry.revoke("acme", "owner") == 1
        assert registry.key_for("acme", "owner").revoked is True

    def test_local_tenant_is_reserved(self, registry):
        # "local" is the anonymous namespace (bare store keys); minting a
        # credential for it would alias the legacy tables.
        with pytest.raises(ProtocolError) as excinfo:
            registry.mint("local", "owner")
        assert excinfo.value.code == ErrorCode.BAD_REQUEST.value

    def test_rotate_unknown_key_errors(self, registry):
        with pytest.raises(ProtocolError) as excinfo:
            registry.rotate("ghost", "owner")
        assert excinfo.value.code == ErrorCode.AUTH_UNKNOWN_TENANT.value
        with pytest.raises(ProtocolError):
            registry.revoke("ghost")

    def test_describe_never_exposes_secrets(self, registry):
        credential = registry.mint("acme", "owner")
        listing = registry.describe()
        assert listing == [
            {
                "tenant_id": "acme",
                "capability": "owner",
                "token_id": credential.token_id,
                "revoked": False,
            }
        ]
        assert credential.secret.hex() not in str(listing)

    def test_persists_and_reloads(self, tmp_path):
        path = tmp_path / "tenants.json"
        first = TenantRegistry(path)
        minted = first.mint("acme", "owner")
        first.mint("globex", "analyst")
        reloaded = TenantRegistry(path)
        assert reloaded.tenant_ids() == ["acme", "globex"]
        key = reloaded.key_for("acme", "owner")
        assert key.secret_hex == minted.secret.hex()
        # Token ids keep counting up across restarts (no id reuse).
        assert reloaded.mint("acme", "analyst").token_id not in {
            minted.token_id,
            "k0002",
        }

    def test_file_backed_registry_sees_foreign_edits(self, tmp_path):
        # `f2-repro admin` runs in its own process: a server's registry
        # must pick up rotations/revocations written to the file by another
        # registry instance — on the next read, without a restart.
        path = tmp_path / "tenants.json"
        server_side = TenantRegistry(path)
        admin_side = TenantRegistry(path)
        minted = admin_side.mint("acme", "owner")
        key = server_side.key_for("acme", "owner")
        assert key is not None and key.secret_hex == minted.secret.hex()
        admin_side.revoke("acme", "owner")
        assert server_side.key_for("acme", "owner").revoked is True
        rotated = admin_side.mint("acme", "owner")
        assert server_side.key_for("acme", "owner").secret_hex == rotated.secret.hex()

    def test_signature_helpers_roundtrip(self):
        secret = b"\x07" * 32
        signature = sign_frame(secret, "sess", 3, b"payload")
        assert verify_frame(secret, "sess", 3, b"payload", signature)
        assert not verify_frame(secret, "sess", 4, b"payload", signature)
        assert not verify_frame(secret, "other", 3, b"payload", signature)
        assert not verify_frame(b"\x08" * 32, "sess", 3, b"payload", signature)


# ----------------------------------------------------------------------
# Wire forms of the new messages
# ----------------------------------------------------------------------
class TestAuthMessages:
    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_hello_roundtrip(self, form):
        message = Hello(
            tenant_id="acme",
            capability="analyst",
            token_id="k0001",
            versions=(1, 2),
            wire_forms=("binary", "json"),
        )
        assert Message.decode(message.encode(form)) == message

    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_hello_ack_roundtrip(self, form):
        message = HelloAck(
            session_id="abcd" * 8, version=2, wire_format="binary", server_name="p"
        )
        assert Message.decode(message.encode(form)) == message

    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_signed_envelope_preserves_payload_bytes(self, form):
        # The signature covers the exact payload bytes; both wire forms must
        # round-trip them untouched (JSON via the base64 wrapping).
        inner = Hello(tenant_id="acme", capability="owner").encode(form)
        envelope = SignedEnvelope(
            session_id="s1", sequence=9, signature="ab" * 32, payload=inner
        )
        decoded = Message.decode(envelope.encode(form))
        assert decoded == envelope
        assert decoded.payload == inner

    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_error_reply_carries_code(self, form):
        reply = ErrorReply(error="AuthError", message="no", code="FORBIDDEN")
        assert Message.decode(reply.encode(form)) == reply

    def test_legacy_error_reply_defaults_to_internal(self):
        # Pre-PR5 replies carry no code; decoding must not fail.
        legacy = b'{"protocol":"f2/1","kind":"error","meta":{"error":"X","message":"y"}}'
        decoded = Message.decode(legacy)
        assert decoded.code == ErrorCode.INTERNAL.value


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------
class TestHandshake:
    def test_handshake_negotiates_session(self, registry, tenanted_server):
        credential = registry.mint("acme", "owner")
        client = loopback(tenanted_server)
        ack = client.authenticate(credential)
        assert ack.version == 3
        assert ack.resume_ticket.startswith("f2tkt1.")
        assert ack.wire_format == "binary"  # the client's preference
        assert client.session_id == ack.session_id

    def test_handshake_prefers_client_wire_form(self, registry, tenanted_server):
        credential = registry.mint("acme", "owner")
        client = ProtocolClient(LoopbackTransport(tenanted_server), wire_format="json")
        assert client.authenticate(credential).wire_format == "json"

    def test_unknown_tenant(self, registry, tenanted_server):
        registry.mint("acme", "owner")
        ghost = Credential(tenant_id="ghost", capability="owner", secret=b"\x01" * 32)
        with pytest.raises(AuthError) as excinfo:
            loopback(tenanted_server).authenticate(ghost)
        assert excinfo.value.code == ErrorCode.AUTH_UNKNOWN_TENANT.value

    def test_missing_capability_key(self, registry, tenanted_server):
        registry.mint("acme", "owner")  # no analyst key minted
        analyst = Credential(tenant_id="acme", capability="analyst", secret=b"\x01" * 32)
        with pytest.raises(AuthError) as excinfo:
            loopback(tenanted_server).authenticate(analyst)
        assert excinfo.value.code == ErrorCode.AUTH_FAILED.value

    def test_revoked_key_cannot_handshake(self, registry, tenanted_server):
        credential = registry.mint("acme", "owner")
        registry.revoke("acme", "owner")
        with pytest.raises(AuthError) as excinfo:
            loopback(tenanted_server).authenticate(credential)
        assert excinfo.value.code == ErrorCode.AUTH_REVOKED.value

    def test_version_mismatch(self, registry, tenanted_server):
        credential = registry.mint("acme", "owner")
        with pytest.raises(AuthError) as excinfo:
            loopback(tenanted_server).authenticate(credential, versions=(1,))
        assert excinfo.value.code == ErrorCode.VERSION_UNSUPPORTED.value

    def test_local_tenant_handshake_rejected(self, registry, tenanted_server):
        # Even a hand-edited registry must not yield a session aliasing the
        # anonymous local namespace.
        registry._keys["local"] = {}
        forged = Credential(tenant_id="local", capability="owner", secret=b"\x01" * 32)
        with pytest.raises(AuthError) as excinfo:
            loopback(tenanted_server).authenticate(forged)
        assert excinfo.value.code == ErrorCode.AUTH_UNKNOWN_TENANT.value

    def test_server_without_registry_rejects_handshake(self):
        credential = Credential(tenant_id="acme", capability="owner", secret=b"\x01" * 32)
        with pytest.raises(AuthError):
            loopback(ProtocolServer()).authenticate(credential)


# ----------------------------------------------------------------------
# Signed sessions end to end (loopback)
# ----------------------------------------------------------------------
class TestSignedSessions:
    @pytest.fixture
    def outsourced(self, registry, tenanted_server, zipcode_table):
        credential = registry.mint("acme", "owner")
        owner = make_owner()
        client = loopback(tenanted_server)
        session = RemoteOwnerSession(owner, client, credential=credential)
        session.outsource(zipcode_table)
        return owner, session, credential

    def test_full_owner_flow(self, outsourced, zipcode_table):
        owner, session, _ = outsourced
        result = session.discover_fds()
        assert result.parameters["validated"] is True
        session.insert_rows([["07030", "Hoboken", "street-new", "N"]])
        matches = session.select("City = Hoboken")
        assert list(matches.rows()) == list(
            owner.select_plaintext_where("City = Hoboken").rows()
        )

    def test_tables_live_in_tenant_namespace(self, outsourced, tenanted_server):
        # The store key is namespaced; the anonymous/local namespace is empty.
        assert tenanted_server.table_ids(None) == ["acme/default"]
        assert tenanted_server.table_ids() == []
        assert tenanted_server.has_table("default", tenant_id="acme")
        assert not tenanted_server.has_table("default")

    def test_cross_tenant_tables_invisible(self, outsourced, registry, tenanted_server):
        other = registry.mint("globex", "owner")
        client = loopback(tenanted_server)
        client.authenticate(other)
        with pytest.raises(ProtocolError) as excinfo:
            client.discover("default")
        assert excinfo.value.code == ErrorCode.UNKNOWN_TABLE.value

    def test_analyst_can_read_but_not_write(
        self, outsourced, registry, tenanted_server, zipcode_table
    ):
        _, session, _ = outsourced
        analyst_cred = registry.mint("acme", "analyst")
        client = loopback(tenanted_server)
        client.authenticate(analyst_cred)
        # Reads of the tenant's table work.
        assert client.discover("default").fds
        # Every mutation is rejected with FORBIDDEN.
        view = session.owner.server_view()
        for call in (
            lambda: client.outsource("default", view),
            lambda: client.insert("default", view),
            lambda: client.save_snapshot("default"),
            lambda: client.load_snapshot("default"),
        ):
            with pytest.raises(AuthError) as excinfo:
                call()
            assert excinfo.value.code == ErrorCode.FORBIDDEN.value

    def test_wrong_secret_fails_on_first_frame(self, outsourced, tenanted_server):
        forged = Credential(tenant_id="acme", capability="owner", secret=b"\x13" * 32)
        client = loopback(tenanted_server)
        client.authenticate(forged)  # the handshake itself is unauthenticated
        with pytest.raises(AuthError) as excinfo:
            client.discover("default")
        assert excinfo.value.code == ErrorCode.AUTH_FAILED.value

    def test_rotation_kills_live_sessions(self, outsourced, registry):
        _, session, _ = outsourced
        registry.rotate("acme", "owner")
        with pytest.raises(AuthError) as excinfo:
            session.discover_fds()
        assert excinfo.value.code == ErrorCode.AUTH_FAILED.value

    def test_revocation_kills_live_sessions(self, outsourced, registry):
        _, session, _ = outsourced
        registry.revoke("acme", "owner")
        with pytest.raises(AuthError) as excinfo:
            session.discover_fds()
        assert excinfo.value.code == ErrorCode.AUTH_REVOKED.value

    def test_replayed_frame_rejected(self, outsourced, tenanted_server, registry):
        _, session, credential = outsourced
        client = session.client
        # Capture the exact bytes of one legitimate signed frame ...
        captured: list[bytes] = []
        transport = client.transport
        original = transport.request

        def capture(data):
            captured.append(data)
            return original(data)

        transport.request = capture
        client.discover("default")
        transport.request = original
        # ... and replay them verbatim: same session, same sequence, same
        # (valid!) signature — the moved sequence window rejects it.
        reply = Message.decode(tenanted_server.handle_bytes(captured[-1]))
        assert isinstance(reply, ErrorReply)
        assert reply.code == ErrorCode.BAD_SEQUENCE.value
        # The failed replay does not desync the legitimate client.
        assert client.discover("default").fds

    def test_handler_error_keeps_session_usable(self, outsourced):
        _, session, _ = outsourced
        client = session.client
        with pytest.raises(ProtocolError) as excinfo:
            client.discover("no-such-table")
        assert excinfo.value.code == ErrorCode.UNKNOWN_TABLE.value
        # The frame was authentic, the sequence advanced on both sides.
        assert client.discover("default").fds

    def test_signed_frame_cannot_nest_handshakes(self, outsourced, tenanted_server):
        _, session, credential = outsourced
        client = session.client
        inner = Hello(tenant_id="acme", capability="owner").encode("binary")
        envelope = SignedEnvelope(
            session_id=client.session_id,
            sequence=client._next_sequence,
            signature=sign_frame(
                credential.secret, client.session_id, client._next_sequence, inner
            ),
            payload=inner,
        )
        reply = Message.decode(tenanted_server.handle_bytes(envelope.encode("binary")))
        assert isinstance(reply, ErrorReply)
        assert reply.code == ErrorCode.BAD_REQUEST.value

    def test_unknown_session_rejected(self, tenanted_server, registry):
        registry.mint("acme", "owner")
        envelope = SignedEnvelope(
            session_id="feed" * 8, sequence=1, signature="00" * 32, payload=b"F2M?"
        )
        reply = Message.decode(tenanted_server.handle_bytes(envelope.encode("binary")))
        assert reply.code == ErrorCode.AUTH_UNKNOWN_SESSION.value

    def test_anonymous_requests_rejected_when_tenanted(self, tenanted_server, registry):
        registry.mint("acme", "owner")
        with pytest.raises(AuthError) as excinfo:
            loopback(tenanted_server).discover("default")
        assert excinfo.value.code == ErrorCode.AUTH_REQUIRED.value

    def test_session_table_bounded_lru(self, registry, tenanted_server, monkeypatch):
        # Handshakes are cheap for anyone who knows a tenant id; the session
        # table must stay bounded, evicting the least recently used session.
        monkeypatch.setattr(ProtocolServer, "MAX_SESSIONS", 3)
        credential = registry.mint("acme", "owner")
        clients = []
        for _ in range(5):
            client = loopback(tenanted_server)
            client.authenticate(credential)
            clients.append(client)
        assert len(tenanted_server._sessions) == 3
        # The two oldest sessions were evicted ...
        with pytest.raises(AuthError) as excinfo:
            clients[0].discover("whatever")
        assert excinfo.value.code == ErrorCode.AUTH_UNKNOWN_SESSION.value
        # ... the newest still works (its table does not exist, but the
        # frame authenticates and reaches the handler).
        with pytest.raises(ProtocolError) as excinfo:
            clients[-1].discover("whatever")
        assert excinfo.value.code == ErrorCode.UNKNOWN_TABLE.value

    def test_allow_anonymous_opt_in(self, registry, zipcode_table):
        server = ProtocolServer(tenants=registry, allow_anonymous=True)
        owner = make_owner()
        owner.outsource(zipcode_table)
        client = loopback(server)
        client.outsource("default", owner.server_view())
        assert server.table_ids() == ["default"]  # the local namespace


# ----------------------------------------------------------------------
# The acceptance matrix over the real socket transport
# ----------------------------------------------------------------------
class TestSocketErrorCodes:
    @pytest.fixture
    def socket_setup(self, zipcode_table):
        registry = TenantRegistry()
        owner_cred = registry.mint("acme", "owner")
        analyst_cred = registry.mint("acme", "analyst")
        registry.mint("globex", "owner")
        server = ProtocolServer(tenants=registry)
        with SocketProtocolServer(server) as sock_server:
            sock_server.serve_in_background()
            owner = make_owner()
            owner.outsource(zipcode_table)
            push = ProtocolClient(SocketTransport(port=sock_server.port))
            push.authenticate(owner_cred)
            push.outsource("default", owner.server_view())
            yield sock_server.port, registry, owner, owner_cred, analyst_cred
            push.close()

    def connect(self, port) -> ProtocolClient:
        return ProtocolClient(SocketTransport(port=port))

    def test_unauthenticated_request(self, socket_setup):
        port, *_ = socket_setup
        client = self.connect(port)
        with pytest.raises(AuthError) as excinfo:
            client.discover("default")
        assert excinfo.value.code == ErrorCode.AUTH_REQUIRED.value
        client.close()

    def test_wrong_tenant_secret(self, socket_setup):
        port, *_ = socket_setup
        client = self.connect(port)
        client.authenticate(
            Credential(tenant_id="acme", capability="owner", secret=b"\x55" * 32)
        )
        with pytest.raises(AuthError) as excinfo:
            client.discover("default")
        assert excinfo.value.code == ErrorCode.AUTH_FAILED.value
        client.close()

    def test_cross_tenant_table_invisible(self, socket_setup):
        port, registry, *_ = socket_setup
        client = self.connect(port)
        client.authenticate(registry.mint("globex", "analyst"))
        with pytest.raises(ProtocolError) as excinfo:
            client.discover("default")
        assert excinfo.value.code == ErrorCode.UNKNOWN_TABLE.value
        client.close()

    def test_wrong_capability(self, socket_setup, zipcode_table):
        port, _, owner, _, analyst_cred = socket_setup
        client = self.connect(port)
        client.authenticate(analyst_cred)
        with pytest.raises(AuthError) as excinfo:
            client.outsource("default", owner.server_view())
        assert excinfo.value.code == ErrorCode.FORBIDDEN.value
        client.close()

    def test_replayed_frame(self, socket_setup):
        port, _, _, owner_cred, _ = socket_setup
        client = self.connect(port)
        client.authenticate(owner_cred)
        # Craft two frames with the same sequence number: the first one
        # lands, the verbatim re-send (a replay) must bounce.
        payload = Message.encode(
            __import__("repro.api.protocol", fromlist=["DiscoverRequest"]).DiscoverRequest(
                table_id="default"
            )
        )
        sequence = client._next_sequence
        envelope = SignedEnvelope(
            session_id=client.session_id,
            sequence=sequence,
            signature=sign_frame(owner_cred.secret, client.session_id, sequence, payload),
            payload=payload,
        ).encode("binary")
        transport = client.transport
        first = Message.decode(transport.request(envelope))
        assert not isinstance(first, ErrorReply)
        replayed = Message.decode(transport.request(envelope))
        assert isinstance(replayed, ErrorReply)
        assert replayed.code == ErrorCode.BAD_SEQUENCE.value
        client.close()

    def test_owner_flow_over_socket(self, socket_setup, zipcode_table):
        port, _, _, owner_cred, _ = socket_setup
        owner = make_owner()
        session = RemoteOwnerSession(
            owner, self.connect(port), credential=owner_cred
        )
        session.outsource(zipcode_table)
        session.insert_rows([["07030", "Hoboken", "street-sock", "S"]])
        assert session.last_delta is not None  # shipped as a delta
        matches = session.query("Zipcode", "07030")
        assert list(matches.rows()) == list(
            owner.select_plaintext("Zipcode", "07030").rows()
        )
        session.close()


# ----------------------------------------------------------------------
# Corrupt-snapshot resilience (satellite regression)
# ----------------------------------------------------------------------
class TestCorruptSnapshotSkip:
    def test_truncated_snapshot_skipped_other_tenants_survive(
        self, tmp_path, zipcode_table
    ):
        registry = TenantRegistry(tmp_path / "tenants.json")
        acme = registry.mint("acme", "owner")
        globex = registry.mint("globex", "owner")
        server = ProtocolServer(storage_dir=tmp_path, tenants=registry)
        owner = make_owner()
        owner.outsource(zipcode_table)
        view = owner.server_view()
        for credential in (acme, globex):
            client = loopback(server)
            client.authenticate(credential)
            client.outsource("orders", view)
        # Truncate acme's snapshot (a crash mid-write / bad disk).
        acme_snapshot = tmp_path / "acme" / "orders.f2t"
        payload = acme_snapshot.read_bytes()
        acme_snapshot.write_bytes(payload[: len(payload) // 2])

        with pytest.warns(RuntimeWarning, match="corrupt snapshot"):
            revived = ProtocolServer(storage_dir=tmp_path, tenants=registry)
        # globex's table survived; acme's needs a re-outsource.
        assert revived.table_ids(None) == ["globex/orders"]
        assert revived.store("orders", tenant_id="globex") == view

    def test_garbage_local_snapshot_skipped(self, tmp_path, zipcode_table):
        owner = make_owner()
        owner.outsource(zipcode_table)
        first = ProtocolServer(storage_dir=tmp_path)
        loopback(first).outsource("good", owner.server_view())
        (tmp_path / "bad.f2t").write_bytes(b"F2WB definitely not a frame")
        with pytest.warns(RuntimeWarning, match="corrupt snapshot"):
            revived = ProtocolServer(storage_dir=tmp_path)
        assert revived.table_ids() == ["good"]

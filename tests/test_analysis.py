"""Tests for repro.analysis: every lint rule against its fixtures, the
suppression/baseline machinery, and the end-to-end guarantee that the
committed tree itself lints clean."""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import (
    Baseline,
    LintError,
    run_lint,
)
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.framework import Project
from repro.analysis.graph import ImportGraph
from repro.analysis.report import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def lint(case: str, **kwargs):
    return run_lint(FIXTURES / case, **kwargs)


def active(result, rule: str | None = None):
    return [
        d
        for d in result.diagnostics
        if d.active and (rule is None or d.rule == rule)
    ]


def locations(result, rule: str):
    return {(d.path, d.line) for d in active(result, rule)}


# ----------------------------------------------------------------------
# Rule-by-rule fixtures
# ----------------------------------------------------------------------
class TestEntropyDiscipline:
    def test_true_positives_with_file_line(self):
        result = lint("entropy")
        locs = locations(result, "entropy-discipline")
        assert ("src/repro/worker.py", 8) in locs  # os.urandom
        assert ("src/repro/worker.py", 12) in locs  # secrets.token_hex
        assert ("src/repro/worker.py", 29) in locs  # unseeded random.Random
        assert ("src/repro/obs.py", 3) in locs  # obs imports random
        assert ("src/repro/obs.py", 7) in locs  # obs mints a PRNG

    def test_suppressed_and_clean_cases(self):
        result = lint("entropy")
        suppressed = [
            d for d in result.diagnostics if d.suppressed and d.rule == "entropy-discipline"
        ]
        assert any(d.path == "src/repro/worker.py" for d in suppressed)
        assert all(d.justification for d in suppressed)
        # The sanctioned crypto module draws freely.
        assert not any(d.path.endswith("crypto/prf.py") for d in active(result))
        # Seeded PRNG outside obs is clean (line 22 of worker.py).
        assert ("src/repro/worker.py", 22) not in locations(result, "entropy-discipline")


class TestPlaintextBoundary:
    def test_direct_import_and_call(self):
        result = lint("boundary")
        locs = locations(result, "plaintext-boundary")
        assert ("src/repro/store/engine.py", 3) in locs  # crypto.keys import
        assert ("src/repro/store/engine.py", 8) in locs  # .decrypt() call

    def test_transitive_reachability_names_the_chain(self):
        result = lint("boundary")
        transitive = [
            d
            for d in active(result, "plaintext-boundary")
            if d.path == "src/repro/store/mid.py"
        ]
        assert transitive, "transitive leak store.mid -> util.helper -> api.session not found"
        assert "repro.util.helper" in transitive[0].message
        assert "repro.api.session" in transitive[0].message

    def test_container_import_is_clean_and_suppression_works(self):
        result = lint("boundary")
        assert not any(
            d.path == "src/repro/query/server.py" for d in active(result)
        ), "the Ciphertext container import must not be flagged"
        suppressed = [
            d
            for d in result.diagnostics
            if d.suppressed and d.path == "src/repro/store/engine.py"
        ]
        assert len(suppressed) == 1 and suppressed[0].line == 12


class TestLockDiscipline:
    def test_blocking_io_in_write_sections(self):
        result = lint("locks")
        locs = locations(result, "lock-discipline")
        assert ("src/repro/store/locky.py", 12) in locs  # sendall
        assert ("src/repro/store/locky.py", 16) in locs  # write_bytes
        assert ("src/repro/store/locky.py", 40) in locs  # nested lock

    def test_suppressed_and_clean_sections(self):
        result = lint("locks")
        locs = locations(result, "lock-discipline")
        # flush_ok sends outside the section; read_is_fine holds a read lock.
        assert not any(line > 40 for _, line in locs)
        suppressed = [d for d in result.diagnostics if d.suppressed]
        assert any(d.rule == "lock-discipline" for d in suppressed)


class TestWireExhaustiveness:
    def test_missing_handler_and_exit_row(self):
        result = lint("wire_bad")
        messages = [d.message for d in active(result, "wire-exhaustiveness")]
        assert any("InsertBatch" in m and "no server handler" in m for m in messages)
        assert any("SNAPSHOT_UNAVAILABLE" in m for m in messages)
        # Replies never need handlers.
        assert not any("QueryResult" in m for m in messages)
        # Missing instrumentation is also flagged in this fixture.
        assert any("server.errors" in m for m in messages)

    def test_fully_wired_fixture_is_clean(self):
        result = lint("wire_ok")
        assert active(result, "wire-exhaustiveness") == []


class TestMetricsDiscipline:
    def test_loop_minting_flagged_cached_clean(self):
        result = lint("metrics")
        locs = locations(result, "metrics-discipline")
        assert locs == {("src/repro/work.py", 8)}
        suppressed = [d for d in result.diagnostics if d.suppressed]
        assert len(suppressed) == 1 and suppressed[0].rule == "metrics-discipline"


class TestExceptionDiscipline:
    def test_swallows_flagged_conversions_clean(self):
        result = lint("excepts")
        locs = locations(result, "exception-discipline")
        assert ("src/repro/store/recover.py", 7) in locs  # silent swallow
        assert ("src/repro/store/recover.py", 14) in locs  # bare except
        assert len(locs) == 2  # convert_ok / narrow_ok / suppressed are clean
        assert any(
            d.suppressed and d.rule == "exception-discipline" for d in result.diagnostics
        )


class TestSuppressionHygiene:
    def test_missing_justification_stale_and_unknown(self):
        result = lint("hygiene")
        hygiene = active(result, "suppression-hygiene")
        messages = [d.message for d in hygiene]
        assert any("without a justification" in m for m in messages)
        assert any("stale allow()" in m for m in messages)
        assert any("unknown rule 'no-such-rule'" in m for m in messages)
        # The unjustified allow still suppresses the entropy diagnostic
        # (hygiene flags the comment itself instead).
        assert active(result, "entropy-discipline") == []
        assert any(
            d.suppressed and d.rule == "entropy-discipline" for d in result.diagnostics
        )

    def test_single_rule_run_skips_hygiene(self):
        result = lint("hygiene", rules=["entropy-discipline"])
        assert active(result, "suppression-hygiene") == []


# ----------------------------------------------------------------------
# Framework pieces
# ----------------------------------------------------------------------
class TestFramework:
    def test_unknown_rule_raises_lint_error(self):
        with pytest.raises(LintError):
            lint("entropy", rules=["no-such-rule"])

    def test_bad_root_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError):
            run_lint(tmp_path)

    def test_allow_examples_in_strings_are_not_suppressions(self):
        # framework.py's own docstrings show allow() syntax; the tokenizer
        # must not parse those as live suppressions (they would be flagged
        # as stale/unknown by suppression-hygiene on the real tree).
        project = Project.load(REPO_ROOT)
        framework = project.by_module["repro.analysis.framework"]
        assert framework.suppressions == []

    def test_import_graph_type_checking_edges(self):
        project = Project.load(REPO_ROOT)
        graph = ImportGraph.build(project)
        type_only = [e for e in graph.edges if e.type_only]
        assert type_only, "the real tree has TYPE_CHECKING imports"
        assert all(
            graph.find_path(e.importer, [e.target]) is None
            or not all(x.type_only for x in graph.find_path(e.importer, [e.target]))
            for e in type_only[:3]
        )


# ----------------------------------------------------------------------
# Baseline machinery
# ----------------------------------------------------------------------
class TestBaseline:
    def test_baseline_demotes_known_findings(self):
        raw = lint("metrics", use_baseline=False)
        baseline = Baseline(
            fingerprints={
                __import__("repro.analysis.baseline", fromlist=["_fingerprint"])._fingerprint(d): "x"
                for d in raw.diagnostics
                if not d.suppressed
            }
        )
        result = lint("metrics", baseline=baseline)
        assert result.ok
        assert all(d.baselined for d in result.diagnostics if not d.suppressed)

    def test_stale_baseline_entries_fail_the_run(self):
        baseline = Baseline(fingerprints={"deadbeefdeadbeef": "fixed long ago"})
        result = lint("wire_ok", baseline=baseline)
        assert not result.ok
        stale = [d for d in result.diagnostics if d.rule == "baseline-stale"]
        assert len(stale) == 1 and "fixed long ago" in stale[0].message

    def test_write_and_load_roundtrip(self, tmp_path):
        shutil.copytree(FIXTURES / "metrics", tmp_path / "proj")
        root = tmp_path / "proj"
        raw = run_lint(root, use_baseline=False)
        write_baseline(root, [d for d in raw.diagnostics if d.rule != "suppression-hygiene"])
        loaded = load_baseline(root)
        assert loaded.fingerprints and loaded.mypy is None
        assert run_lint(root).ok


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
class TestReporting:
    def test_text_report_has_file_line_diagnostics(self):
        result = lint("locks")
        text = render_text(result)
        assert "src/repro/store/locky.py:12: [lock-discipline]" in text
        assert "finding(s)" in text

    def test_json_report_shape(self):
        result = lint("excepts")
        doc = json.loads(render_json(result))
        assert doc["ok"] is False
        assert doc["counts"]["active"] == 2
        flagged = [d for d in doc["diagnostics"] if not d.get("suppressed")]
        assert all({"rule", "path", "line", "message"} <= set(d) for d in flagged)
        assert all(d["justification"] for d in doc["diagnostics"] if d.get("suppressed"))


# ----------------------------------------------------------------------
# CLI + end-to-end
# ----------------------------------------------------------------------
class TestCli:
    def test_lint_exits_zero_on_the_repo_itself(self, capsys):
        assert cli.main(["lint", "--root", str(REPO_ROOT)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_exits_nonzero_on_fixture_violations(self, capsys):
        assert cli.main(["lint", "--root", str(FIXTURES / "locks")]) == 1
        out = capsys.readouterr().out
        assert "src/repro/store/locky.py:12" in out

    def test_lint_json_flag(self, capsys):
        assert cli.main(["lint", "--json", "--root", str(REPO_ROOT)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and doc["counts"]["active"] == 0

    def test_lint_rule_filter_and_unknown_rule(self, capsys):
        assert cli.main(["lint", "--root", str(REPO_ROOT), "--rule", "lock-discipline"]) == 0
        assert cli.main(["lint", "--root", str(REPO_ROOT), "--rule", "bogus"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_fix_baseline_then_clean(self, tmp_path, capsys):
        shutil.copytree(FIXTURES / "excepts", tmp_path / "proj")
        root = str(tmp_path / "proj")
        assert cli.main(["lint", "--root", root]) == 1
        capsys.readouterr()
        assert cli.main(["lint", "--root", root, "--fix-baseline"]) == 0
        assert "baseline rewritten" in capsys.readouterr().out
        assert cli.main(["lint", "--root", root]) == 0

    def test_console_script_end_to_end(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--root", str(REPO_ROOT)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_every_error_code_has_an_exit_row(self):
        from repro.api.auth import ErrorCode

        for member in ErrorCode:
            assert member.value in cli.ERROR_CODE_EXITS, member

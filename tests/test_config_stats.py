"""Tests for F2Config validation and EncryptionStats accounting."""

import pytest

from repro.core.config import F2Config
from repro.core.stats import (
    OVERHEAD_FP,
    OVERHEAD_GROUP,
    OVERHEAD_SCALE,
    OVERHEAD_SYN,
    STEP_FP,
    STEP_MAX,
    STEP_SSE,
    STEP_SYN,
    EncryptionStats,
)
from repro.exceptions import ConfigurationError


class TestF2Config:
    def test_defaults_are_valid(self):
        config = F2Config()
        assert 0 < config.alpha <= 1
        assert config.split_factor >= 1

    @pytest.mark.parametrize("alpha,expected_k", [(1.0, 1), (0.5, 2), (0.34, 3), (0.2, 5), (0.1, 10)])
    def test_group_size_is_ceil_inverse_alpha(self, alpha, expected_k):
        assert F2Config(alpha=alpha).group_size == expected_k

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(ConfigurationError):
            F2Config(alpha=alpha)

    def test_invalid_split_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            F2Config(split_factor=0)

    def test_invalid_nonce_length_rejected(self):
        with pytest.raises(ConfigurationError):
            F2Config(nonce_length=4)

    def test_invalid_mas_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            F2Config(mas_strategy="guess")

    def test_invalid_verify_max_lhs_rejected(self):
        with pytest.raises(ConfigurationError):
            F2Config(verify_max_lhs=0)

    def test_with_alpha_returns_modified_copy(self):
        base = F2Config(alpha=0.5)
        derived = base.with_alpha(0.25)
        assert derived.alpha == 0.25 and base.alpha == 0.5

    def test_with_split_factor(self):
        assert F2Config().with_split_factor(4).split_factor == 4

    def test_to_dict_contains_key_parameters(self):
        data = F2Config(alpha=0.25, split_factor=3).to_dict()
        assert data["alpha"] == 0.25
        assert data["split_factor"] == 3
        assert data["group_size"] == 4


class TestEncryptionStats:
    @pytest.fixture
    def stats(self) -> EncryptionStats:
        return EncryptionStats(
            rows_original=100,
            attributes=5,
            rows_added_group=10,
            rows_added_scale=5,
            rows_added_conflict=2,
            rows_added_false_positive=8,
            seconds_max=0.1,
            seconds_sse=0.4,
            seconds_syn=0.05,
            seconds_fp=0.2,
        )

    def test_rows_added_total(self, stats):
        assert stats.rows_added_total == 25

    def test_rows_encrypted(self, stats):
        assert stats.rows_encrypted == 125

    def test_step_seconds_keys(self, stats):
        assert set(stats.step_seconds()) == {STEP_MAX, STEP_SSE, STEP_SYN, STEP_FP}

    def test_overhead_rows_keys(self, stats):
        assert set(stats.overhead_rows()) == {
            OVERHEAD_GROUP,
            OVERHEAD_SCALE,
            OVERHEAD_SYN,
            OVERHEAD_FP,
        }

    def test_overhead_ratios(self, stats):
        ratios = stats.overhead_ratios()
        assert ratios[OVERHEAD_GROUP] == pytest.approx(0.10)
        assert ratios[OVERHEAD_FP] == pytest.approx(0.08)

    def test_total_overhead_ratio(self, stats):
        assert stats.total_overhead_ratio == pytest.approx(0.25)

    def test_overhead_ratio_handles_zero_rows(self):
        assert EncryptionStats().total_overhead_ratio == 0.0

    def test_to_dict_round_numbers(self, stats):
        data = stats.to_dict()
        assert data["rows_original"] == 100
        assert data["rows_encrypted"] == 125
        assert data["rows_added_group"] == 10
        assert data["seconds_sse"] == pytest.approx(0.4)

"""Tests for Step 2.2: splitting-and-scaling and the optimal split point."""

import math

import pytest

from repro.core.ecg import EcgMember, EquivalenceClassGroup
from repro.core.split_scale import build_ecg_plan, find_optimal_split_point
from repro.exceptions import EncryptionError


def make_group(sizes, attributes=("A", "B"), index=0):
    """Build a collision-free ECG with real members of the given sizes."""
    members = []
    next_row = 0
    for position, size in enumerate(sizes):
        rows = tuple(range(next_row, next_row + size))
        next_row += size
        members.append(
            EcgMember(representative=(f"a{position}", f"b{position}"), rows=rows)
        )
    return EquivalenceClassGroup(mas_attributes=attributes, members=members, index=index)


class TestOptimalSplitPoint:
    def test_uniform_sizes_need_no_copies_without_split(self):
        split_point, target, copies = find_optimal_split_point([4, 4, 4], split_factor=1)
        assert copies == 0
        assert target == 4

    def test_split_reduces_copies_for_one_large_class(self):
        # Sizes 1,1,8 with omega=2: splitting only the large class gives
        # target 4 and copies (4-1)+(4-1)+0 = 6; not splitting costs 14.
        split_point, target, copies = find_optimal_split_point([1, 1, 8], split_factor=2)
        assert copies <= 6
        assert target <= 4

    def test_no_split_when_factor_is_one(self):
        split_point, target, copies = find_optimal_split_point([2, 3, 5], split_factor=1)
        assert target == 5
        assert copies == (5 - 2) + (5 - 3)

    def test_single_class(self):
        split_point, target, copies = find_optimal_split_point([6], split_factor=3)
        assert copies in (0, 6 * 3 - 6) or copies >= 0
        assert target >= 1

    def test_copies_never_negative(self):
        for sizes in ([1], [1, 2, 3], [5, 5, 5], [1, 10], [2, 2, 9]):
            for omega in (1, 2, 3, 4):
                _, _, copies = find_optimal_split_point(sorted(sizes), omega)
                assert copies >= 0

    def test_unsorted_sizes_rejected(self):
        with pytest.raises(EncryptionError):
            find_optimal_split_point([3, 1], split_factor=2)

    def test_empty_sizes_rejected(self):
        with pytest.raises(EncryptionError):
            find_optimal_split_point([], split_factor=2)

    def test_invalid_split_factor_rejected(self):
        with pytest.raises(EncryptionError):
            find_optimal_split_point([1, 2], split_factor=0)

    def test_exhaustive_optimality_small_cases(self):
        """The returned copy count matches brute-force evaluation of all split points."""

        def brute_force(sizes, omega):
            best = None
            count = len(sizes)
            for j in range(1, count + 2):
                unsplit_max = sizes[j - 2] if j > 1 else 0
                if j <= count:
                    target = max(math.ceil(sizes[-1] / omega), unsplit_max, 1)
                else:
                    target = max(sizes[-1], 1)
                copies = 0
                for index, size in enumerate(sizes, start=1):
                    if j <= count and index >= j:
                        copies += omega * target - size
                    else:
                        copies += target - size
                if copies >= 0 and (best is None or copies < best):
                    best = copies
            return best

        cases = [[1, 2, 8], [2, 2, 2], [1, 1, 1, 9], [3, 5, 7, 11], [1, 4]]
        for sizes in cases:
            for omega in (1, 2, 3):
                _, _, copies = find_optimal_split_point(sizes, omega)
                assert copies == brute_force(sizes, omega)


class TestEcgPlan:
    def test_all_instances_reach_target_frequency(self):
        plan = build_ecg_plan(make_group([2, 3, 7]), split_factor=2)
        frequencies = plan.instance_frequencies()
        assert len(set(frequencies)) == 1
        assert frequencies[0] == plan.target_frequency

    def test_requirement_one_rows_are_partitioned(self):
        """Every original row of every member appears in exactly one instance."""
        group = make_group([2, 3, 7])
        plan = build_ecg_plan(group, split_factor=2)
        for member_plan in plan.member_plans:
            planned_rows = [
                row for instance in member_plan.instances for row in instance.original_rows
            ]
            assert sorted(planned_rows) == sorted(member_plan.member.rows)

    def test_variants_are_unique_per_instance(self):
        plan = build_ecg_plan(make_group([4, 4, 8]), split_factor=2, namespace="m0")
        variants = [
            instance.variant
            for member_plan in plan.member_plans
            for instance in member_plan.instances
        ]
        assert len(variants) == len(set(variants))

    def test_namespace_included_in_variants(self):
        plan = build_ecg_plan(make_group([2, 2]), split_factor=1, namespace="mas7")
        for member_plan in plan.member_plans:
            for instance in member_plan.instances:
                assert instance.variant.startswith("mas7|")

    def test_keep_pairs_together_guard(self):
        """With the guard, no split chunk of a real class holds a single original row."""
        plan = build_ecg_plan(make_group([2, 2, 2]), split_factor=4, keep_pairs_together=True)
        for member_plan in plan.member_plans:
            for instance in member_plan.instances:
                if instance.original_rows:
                    assert len(instance.original_rows) >= 2

    def test_guard_disabled_allows_small_chunks(self):
        plan = build_ecg_plan(make_group([2, 2, 4]), split_factor=4, keep_pairs_together=False)
        chunk_sizes = [
            len(instance.original_rows)
            for member_plan in plan.member_plans
            for instance in member_plan.instances
        ]
        assert min(chunk_sizes) <= 1

    def test_copies_added_matches_difference(self):
        group = make_group([1, 2, 5])
        plan = build_ecg_plan(group, split_factor=2)
        original_rows = sum(member.size for member in group.members)
        planned_rows = sum(plan.instance_frequencies())
        assert plan.copies_added == planned_rows - original_rows

    def test_fake_members_are_never_split(self):
        fake = EcgMember(representative=("f1", "f2"), rows=(), is_fake=True, fake_tokens=("t1", "t2"), fake_size=4)
        group = EquivalenceClassGroup(
            mas_attributes=("A", "B"),
            members=[EcgMember(representative=("a", "b"), rows=(0, 1, 2, 3)), fake],
            index=0,
        )
        plan = build_ecg_plan(group, split_factor=3)
        fake_plan = next(p for p in plan.member_plans if p.member.is_fake)
        assert len(fake_plan.instances) == 1
        assert not fake_plan.was_split

    def test_split_marks_was_split(self):
        plan = build_ecg_plan(make_group([1, 1, 12]), split_factor=2)
        split_flags = {
            member_plan.member.size: member_plan.was_split for member_plan in plan.member_plans
        }
        assert split_flags[12] is True

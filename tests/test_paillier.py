"""Tests for the from-scratch Paillier cryptosystem (the Figure 8 baseline)."""

import pytest

from repro.crypto.paillier import PaillierCipher, PaillierKeyPair, _is_probable_prime
from repro.exceptions import DecryptionError, EncryptionError


@pytest.fixture(scope="module")
def keypair() -> PaillierKeyPair:
    # 256-bit keys keep the test suite fast; correctness is size-independent.
    return PaillierKeyPair.generate(bits=256)


@pytest.fixture(scope="module")
def cipher(keypair) -> PaillierCipher:
    return PaillierCipher(keypair)


class TestPrimality:
    def test_known_primes(self):
        for prime in (2, 3, 5, 7, 97, 7919, 104729):
            assert _is_probable_prime(prime)

    def test_known_composites(self):
        for composite in (1, 0, 4, 100, 561, 7917, 104730):
            assert not _is_probable_prime(composite)


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert keypair.public.n.bit_length() >= 255

    def test_g_is_n_plus_one(self, keypair):
        assert keypair.public.g == keypair.public.n + 1

    def test_too_small_modulus_rejected(self):
        with pytest.raises(EncryptionError):
            PaillierKeyPair.generate(bits=64)


class TestEncryption:
    def test_int_roundtrip(self, cipher):
        for message in (0, 1, 42, 10**9, 2**100):
            assert cipher.decrypt_int(cipher.encrypt_int(message)) == message

    def test_probabilistic(self, cipher):
        assert cipher.encrypt_int(7) != cipher.encrypt_int(7)

    def test_out_of_range_plaintext_rejected(self, cipher):
        with pytest.raises(EncryptionError):
            cipher.encrypt_int(-1)
        with pytest.raises(EncryptionError):
            cipher.encrypt_int(cipher.public_key.n)

    def test_out_of_range_ciphertext_rejected(self, cipher):
        with pytest.raises(DecryptionError):
            cipher.decrypt_int(cipher.public_key.n_squared)

    def test_additive_homomorphism(self, cipher):
        left = cipher.encrypt_int(123)
        right = cipher.encrypt_int(456)
        assert cipher.decrypt_int(cipher.add(left, right)) == 579

    def test_cell_roundtrip(self, cipher):
        for value in ("Hoboken", "07030", "order#42"):
            assert cipher.decrypt_cell(cipher.encrypt_cell(value)) == value

    def test_cell_too_long_rejected(self, cipher):
        with pytest.raises(EncryptionError):
            cipher.encrypt_cell("x" * 200)

"""Unit tests for repro.relational.schema."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import Schema


class TestSchemaConstruction:
    def test_attributes_preserved_in_order(self):
        schema = Schema(["B", "A", "C"])
        assert schema.attributes == ("B", "A", "C")

    def test_len_and_iteration(self):
        schema = Schema(["A", "B", "C"])
        assert len(schema) == 3
        assert list(schema) == ["A", "B", "C"]

    def test_contains(self):
        schema = Schema(["A", "B"])
        assert "A" in schema
        assert "Z" not in schema

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", "B", "A"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", ""])

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", 3])

    def test_equality_and_hash(self):
        assert Schema(["A", "B"]) == Schema(["A", "B"])
        assert Schema(["A", "B"]) != Schema(["B", "A"])
        assert hash(Schema(["A", "B"])) == hash(Schema(["A", "B"]))

    def test_repr_mentions_attributes(self):
        assert "A" in repr(Schema(["A"]))


class TestSchemaAttributeSets:
    def test_index_of(self):
        schema = Schema(["A", "B", "C"])
        assert schema.index_of("B") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).index_of("B")

    def test_validate_attributes_returns_frozenset(self):
        schema = Schema(["A", "B", "C"])
        result = schema.validate_attributes(["C", "A"])
        assert result == frozenset({"A", "C"})

    def test_validate_attributes_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["A", "B"]).validate_attributes(["A", "Z"])

    def test_ordered_returns_schema_order(self):
        schema = Schema(["A", "B", "C", "D"])
        assert schema.ordered(["D", "B"]) == ("B", "D")

    def test_complement(self):
        schema = Schema(["A", "B", "C"])
        assert schema.complement(["B"]) == frozenset({"A", "C"})

    def test_project_preserves_order(self):
        schema = Schema(["A", "B", "C"])
        assert schema.project(["C", "A"]).attributes == ("A", "C")

    def test_project_empty_raises(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).project([])

    def test_canonical_key_is_order_independent(self):
        schema = Schema(["A", "B", "C"])
        assert schema.canonical_key(["C", "A"]) == schema.canonical_key({"A", "C"})

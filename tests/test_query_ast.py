"""Tests of the predicate AST and the expression parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError, QuerySyntaxError
from repro.query import And, Eq, In, Not, Or, Predicate, evaluate_predicate, parse_predicate
from repro.relational.table import Relation


@pytest.fixture
def table() -> Relation:
    return Relation(
        ["City", "Zip", "Side"],
        [
            ["Hoboken", "07030", "N"],
            ["JerseyCity", "07302", "S"],
            ["Hoboken", "07030", "S"],
            ["Newark", "07102", "N"],
            ["JerseyCity", "07310", "N"],
        ],
    )


def naive_selection(relation: Relation, predicate: Predicate) -> list[int]:
    return [
        index
        for index in range(relation.num_rows)
        if predicate.matches(relation.row_dict(index))
    ]


class TestAstSemantics:
    def test_eq_matches_textually(self):
        assert Eq("A", "1").matches({"A": 1})
        assert Eq("A", 1).value == "1"  # literals normalise to text
        assert not Eq("A", "1").matches({"A": "10"})

    def test_in_drops_duplicates_keeps_order(self):
        node = In("A", ("b", "a", "b"))
        assert node.values == ("b", "a")
        assert node.matches({"A": "a"}) and not node.matches({"A": "c"})

    def test_in_requires_values(self):
        with pytest.raises(QueryError):
            In("A", ())

    def test_and_or_flatten_and_require_two_children(self):
        inner = And((Eq("A", "1"), Eq("B", "2")))
        outer = And((inner, Eq("C", "3")))
        assert len(outer.children) == 3
        assert Or((Or((Eq("A", "1"), Eq("B", "2"))), Eq("C", "3"))).children == (
            Eq("A", "1"),
            Eq("B", "2"),
            Eq("C", "3"),
        )
        with pytest.raises(QueryError):
            And((Eq("A", "1"),))

    def test_not_negates(self):
        assert Not(Eq("A", "1")).matches({"A": "2"})
        assert not Not(Eq("A", "1")).matches({"A": "1"})

    def test_attributes_collect_all(self):
        predicate = And((Eq("A", "1"), Or((In("B", ("x",)), Not(Eq("C", "y"))))))
        assert predicate.attributes() == frozenset({"A", "B", "C"})

    def test_missing_attribute_raises(self):
        with pytest.raises(QueryError):
            Eq("A", "1").matches({"B": "1"})

    def test_dict_roundtrip(self):
        predicate = And((Eq("A", "1"), Or((In("B", ("x", "y")), Not(Eq("C", "z"))))))
        assert Predicate.from_dict(predicate.to_dict()) == predicate

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(QueryError):
            Predicate.from_dict({"op": "xor"})
        with pytest.raises(QueryError):
            Predicate.from_dict("nope")


class TestEvaluate:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("City = Hoboken", [0, 2]),
            ("City != Hoboken", [1, 3, 4]),
            ("Zip in (07030, 07310)", [0, 2, 4]),
            ("City = Hoboken and Side = S", [2]),
            ("City = Hoboken or City = Newark", [0, 2, 3]),
            ("not (City = Hoboken or Side = N)", [1]),
            ("City not in (Hoboken, JerseyCity)", [3]),
            ("City = Atlantis", []),
        ],
    )
    def test_expressions(self, table, expression, expected):
        predicate = parse_predicate(expression)
        assert evaluate_predicate(table, predicate) == expected
        assert naive_selection(table, predicate) == expected

    def test_unknown_attribute_rejected(self, table):
        with pytest.raises(QueryError):
            evaluate_predicate(table, Eq("Nope", "x"))

    def test_non_string_cells_compare_textually(self):
        relation = Relation(["N", "B"], [[1, True], [10, False], [2, True]])
        assert evaluate_predicate(relation, parse_predicate("N = 1")) == [0]
        assert evaluate_predicate(relation, parse_predicate("B = True")) == [0, 2]


class TestParser:
    def test_precedence_or_lower_than_and(self):
        predicate = parse_predicate("A = 1 or B = 2 and C = 3")
        assert predicate == Or((Eq("A", "1"), And((Eq("B", "2"), Eq("C", "3")))))

    def test_parentheses_override(self):
        predicate = parse_predicate("(A = 1 or B = 2) and C = 3")
        assert predicate == And((Or((Eq("A", "1"), Eq("B", "2"))), Eq("C", "3")))

    def test_not_binds_tightest(self):
        predicate = parse_predicate("not A = 1 and B = 2")
        assert predicate == And((Not(Eq("A", "1")), Eq("B", "2")))

    def test_double_negation(self):
        assert parse_predicate("not not A = 1") == Not(Not(Eq("A", "1")))

    def test_neq_and_not_in_desugar(self):
        assert parse_predicate("A != 1") == Not(Eq("A", "1"))
        assert parse_predicate("A not in (1, 2)") == Not(In("A", ("1", "2")))

    def test_quoted_values_and_attributes(self):
        predicate = parse_predicate("'Order Status' = 'open order' and B == \"x,y\"")
        assert predicate == And((Eq("Order Status", "open order"), Eq("B", "x,y")))

    def test_quoting_disables_keywords(self):
        assert parse_predicate("A = 'and'") == Eq("A", "and")
        assert parse_predicate("'not' = x") == Eq("not", "x")

    def test_bare_word_charset(self):
        assert parse_predicate("Date = 1995-03-07T10:30") == Eq("Date", "1995-03-07T10:30")
        assert parse_predicate("Mail = a+b@c.d") == Eq("Mail", "a+b@c.d")
        assert parse_predicate("Clerk != Clerk#00009") == Not(Eq("Clerk", "Clerk#00009"))

    def test_keywords_case_insensitive(self):
        predicate = parse_predicate("A = 1 AND B IN (2) OR NOT C = 3")
        assert predicate == Or((And((Eq("A", "1"), In("B", ("2",)))), Not(Eq("C", "3"))))

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "A =",
            "= 1",
            "A = 1 and",
            "A in ()",
            "A in (1,)",
            "A in 1",
            "(A = 1",
            "A = 1)",
            "A ~ 1",
            "A = 'unterminated",
            "not",
            "A not 1",
            "A = 1 B = 2",
            "and = 1",
        ],
    )
    def test_malformed_expressions_raise(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_predicate(bad)

    def test_error_reports_position(self):
        with pytest.raises(QuerySyntaxError, match="position"):
            parse_predicate("A = 1 ~ 2")


# ----------------------------------------------------------------------
# Round trip: parse(str(p)) == p for arbitrary predicates
# ----------------------------------------------------------------------
_values = st.one_of(
    st.text(
        alphabet="abcXYZ019_.:@+-", min_size=1, max_size=6
    ),
    st.sampled_from(["with space", "and", "or", "not", "in", "O'Brien", 'say "hi"']),
)
_attributes = st.sampled_from(["A", "B", "Order Status", "Zip"])
_leaves = st.one_of(
    st.builds(Eq, _attributes, _values),
    st.builds(
        In, _attributes, st.lists(_values, min_size=1, max_size=3).map(tuple)
    ),
)
_predicates = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.builds(lambda cs: And(tuple(cs)), st.lists(children, min_size=2, max_size=3)),
        st.builds(lambda cs: Or(tuple(cs)), st.lists(children, min_size=2, max_size=3)),
        st.builds(Not, children),
    ),
    max_leaves=6,
)


class TestStringRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(_predicates)
    def test_parse_of_str_is_identity(self, predicate):
        assert parse_predicate(str(predicate)) == predicate

    def test_mixed_quotes_unrenderable(self):
        with pytest.raises(QueryError):
            str(Eq("A", "both ' and \" quotes"))

"""Unit tests of the trustworthy-server building blocks (PR 8).

Covers the Merkle tree (construction, O(log n) appends, inclusion proofs,
odd-tail promotion), the wire codec for proof attachments, the owner's
:class:`~repro.integrity.state.TableIntegrityState` (root agreement,
freshness chain, proof checking), reply signing, resumption tickets, and
the :class:`~repro.exceptions.StoreIntegrityWarning` category.
"""

import hashlib

import pytest

from repro.api.auth import (
    open_ticket,
    seal_ticket,
    sign_reply,
    verify_reply,
)
from repro.api.delta import compute_view_delta, relation_digest
from repro.exceptions import AuthError, IntegrityError, StoreIntegrityWarning, WireError
from repro.integrity.merkle import (
    EMPTY_ROOT,
    MerkleTree,
    hash_row,
    leaves_after_delta,
    relation_leaves,
    verify_proof,
)
from repro.integrity.state import TableIntegrityState
from repro.relational.table import Relation
from repro.wire import decode_merkle_proofs, encode_merkle_proofs


def leaves(n: int) -> list[bytes]:
    return [hash_row([f"r{i}", i]) for i in range(n)]


def relation(rows) -> Relation:
    return Relation(["A", "B"], [list(map(str, r)) for r in rows], name="t")


# ----------------------------------------------------------------------
# Merkle tree
# ----------------------------------------------------------------------
class TestMerkleTree:
    def test_empty_tree_has_fixed_root(self):
        tree = MerkleTree()
        assert tree.num_leaves == 0
        assert tree.root == EMPTY_ROOT
        # The constant is domain-separated, not the hash of nothing.
        assert tree.root != hashlib.sha256(b"").hexdigest()

    def test_single_leaf_root_is_the_leaf(self):
        leaf = hash_row(["x"])
        assert MerkleTree([leaf]).root == leaf.hex()

    def test_root_is_deterministic_and_order_sensitive(self):
        ls = leaves(5)
        assert MerkleTree(ls).root == MerkleTree(ls).root
        assert MerkleTree(ls).root != MerkleTree(list(reversed(ls))).root

    def test_leaf_and_node_domains_are_separated(self):
        # A two-leaf root must differ from a leaf whose content is the
        # concatenation of the two leaves (0x00 vs 0x01 prefixes).
        a, b = leaves(2)
        forged = hashlib.sha256(b"\x00" + a + b).hexdigest()
        assert MerkleTree([a, b]).root != forged

    @pytest.mark.parametrize("size", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 31, 64])
    @pytest.mark.parametrize("added", [1, 2, 3, 7])
    def test_extend_equals_rebuild(self, size, added):
        base = leaves(size)
        extra = [hash_row(["new", i]) for i in range(added)]
        tree = MerkleTree(base)
        tree.extend(extra)
        assert tree.root == MerkleTree(base + extra).root
        assert tree.num_leaves == size + added

    def test_extend_nothing_is_a_noop(self):
        tree = MerkleTree(leaves(5))
        before = tree.root
        tree.extend([])
        assert tree.root == before

    def test_copy_is_independent(self):
        tree = MerkleTree(leaves(4))
        clone = tree.copy()
        clone.append(hash_row(["z"]))
        assert tree.num_leaves == 4
        assert clone.num_leaves == 5
        assert tree.root != clone.root

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 6, 7, 8, 11, 16, 33])
    def test_every_proof_verifies(self, size):
        ls = leaves(size)
        tree = MerkleTree(ls)
        for i in range(size):
            path = tree.proof(i)
            assert verify_proof(ls[i], i, size, path, tree.root)
            assert len(path) <= max(1, size - 1).bit_length()

    def test_proof_fails_for_wrong_leaf_index_or_root(self):
        ls = leaves(7)
        tree = MerkleTree(ls)
        path = tree.proof(3)
        assert not verify_proof(ls[2], 3, 7, path, tree.root)  # wrong leaf
        assert not verify_proof(ls[3], 2, 7, path, tree.root)  # wrong index
        assert not verify_proof(ls[3], 3, 7, path, MerkleTree(leaves(6)).root)
        assert not verify_proof(ls[3], 3, 7, path[:-1], tree.root)  # truncated
        assert not verify_proof(ls[3], 3, 7, path + [ls[0]], tree.root)  # padded
        assert not verify_proof(ls[3], 3, 0, path, tree.root)
        assert not verify_proof(ls[3], 9, 7, path, tree.root)

    def test_promoted_tail_contributes_no_path_element(self):
        # In a 5-leaf tree, leaf 4 is promoted until the final pairing: its
        # proof is a single sibling (the 4-leaf subtree root).
        ls = leaves(5)
        tree = MerkleTree(ls)
        path = tree.proof(4)
        assert len(path) == 1
        assert path[0].hex() == MerkleTree(ls[:4]).root
        assert verify_proof(ls[4], 4, 5, path, tree.root)

    def test_proof_out_of_range_raises(self):
        with pytest.raises(IntegrityError):
            MerkleTree(leaves(3)).proof(3)

    def test_relation_leaves_match_canonical_digest_bytes(self):
        # Same canonical cell bytes as relation_digest: two relations with
        # equal rows hash identically regardless of name.
        rel_a = relation([["x", 1], ["y", 2]])
        rel_b = Relation(["A", "B"], [["x", "1"], ["y", "2"]], name="other")
        assert relation_leaves(rel_a) == relation_leaves(rel_b)
        assert relation_digest(rel_a) == relation_digest(rel_b)


class TestLeavesAfterDelta:
    def test_matches_full_rehash(self):
        base = relation([[f"k{i}", i] for i in range(8)])
        updated = relation([[f"k{i}", i] for i in range(8)] + [["new", 99]])
        delta = compute_view_delta(base, updated)
        derived = leaves_after_delta(relation_leaves(base), delta)
        assert derived == relation_leaves(updated)
        assert MerkleTree(derived).root == MerkleTree(relation_leaves(updated)).root

    def test_copy_segment_outside_base_raises(self):
        base = relation([["a", 1], ["b", 2]])
        updated = relation([["a", 1], ["b", 2], ["c", 3]])
        delta = compute_view_delta(base, updated)
        with pytest.raises(IntegrityError):
            leaves_after_delta(relation_leaves(base)[:1], delta)


# ----------------------------------------------------------------------
# Proof attachments on the wire
# ----------------------------------------------------------------------
class TestProofCodec:
    @pytest.mark.parametrize("form", ["binary", "json"])
    def test_round_trip(self, form):
        tree = MerkleTree(leaves(9))
        paths = [tree.proof(i) for i in (0, 4, 8)]
        blob = encode_merkle_proofs(9, paths, form)
        num_leaves, decoded = decode_merkle_proofs(blob)
        assert num_leaves == 9
        assert decoded == paths

    @pytest.mark.parametrize("form", ["binary", "json"])
    def test_empty_paths(self, form):
        blob = encode_merkle_proofs(4, [], form)
        assert decode_merkle_proofs(blob) == (4, [])

    def test_unrecognised_blob_rejected(self):
        with pytest.raises(WireError):
            decode_merkle_proofs(b"\x99garbage")

    def test_binary_rejects_non_digest_lengths(self):
        with pytest.raises(WireError):
            encode_merkle_proofs(2, [[b"short"]], "binary")


# ----------------------------------------------------------------------
# Owner-side verification state
# ----------------------------------------------------------------------
class TestTableIntegrityState:
    def make_state(self, rows=4):
        view = relation([[f"k{i}", i] for i in range(rows)])
        state = TableIntegrityState("orders")
        state.record_push(view, version=1)
        return state, view

    def test_push_and_matching_reply(self):
        state, view = self.make_state()
        root = state.expected_root
        state.check_reply(1, root, num_rows=view.num_rows)
        state.check_reply(1, root)  # row count optional

    def test_push_rejects_contradicting_server_root(self):
        view = relation([["a", 1]])
        state = TableIntegrityState("orders")
        with pytest.raises(IntegrityError, match="acknowledged root"):
            state.record_push(view, version=1, server_root="ff" * 32)

    def test_wrong_root_raises(self):
        state, _ = self.make_state()
        with pytest.raises(IntegrityError, match="differs from the owner"):
            state.check_reply(1, "ab" * 32)

    def test_wrong_row_count_raises(self):
        state, view = self.make_state()
        with pytest.raises(IntegrityError, match="rows"):
            state.check_reply(1, state.expected_root, num_rows=view.num_rows + 1)

    def test_version_rollback_raises(self):
        state, _ = self.make_state()
        root = state.expected_root
        with pytest.raises(IntegrityError, match="rollback|regressed"):
            state.check_reply(0, root)

    def test_fork_same_version_different_root_raises(self):
        state = TableIntegrityState("orders")
        # No tree recorded (analyst-style state): only the freshness chain.
        state.check_reply(3, "aa" * 32)
        with pytest.raises(IntegrityError, match="fork"):
            state.check_reply(3, "bb" * 32)

    def test_record_delta_advances_root(self):
        base = relation([[f"k{i}", i] for i in range(4)])
        updated = relation([[f"k{i}", i] for i in range(4)] + [["new", 9]])
        state = TableIntegrityState("orders")
        state.record_push(base, version=1)
        delta = compute_view_delta(base, updated)
        root = state.record_delta(delta, version=2)
        assert root == MerkleTree(relation_leaves(updated)).root
        state.check_reply(2, root, num_rows=updated.num_rows)

    def test_record_delta_before_push_raises(self):
        base = relation([["a", 1]])
        delta = compute_view_delta(base, base)
        with pytest.raises(IntegrityError, match="before any push"):
            TableIntegrityState("orders").record_delta(delta, version=1)

    def test_verify_proofs_accepts_and_rejects(self):
        state, view = self.make_state(rows=6)
        tree = MerkleTree(relation_leaves(view))
        indexes = [1, 4]
        proofs = [tree.proof(i) for i in indexes]
        state.verify_proofs(indexes, proofs, tree.num_leaves, tree.root)
        with pytest.raises(IntegrityError, match="does not verify"):
            state.verify_proofs([1, 5], proofs, tree.num_leaves, tree.root)
        with pytest.raises(IntegrityError, match="proofs for"):
            state.verify_proofs(indexes, proofs[:1], tree.num_leaves, tree.root)
        with pytest.raises(IntegrityError, match="-row tree"):
            state.verify_proofs(indexes, proofs, tree.num_leaves + 1, tree.root)
        with pytest.raises(IntegrityError, match="outside"):
            state.verify_proofs([99, 4], proofs, tree.num_leaves, tree.root)


# ----------------------------------------------------------------------
# Reply signatures and resumption tickets
# ----------------------------------------------------------------------
class TestReplySignatures:
    SECRET = b"\x07" * 32

    def test_round_trip(self):
        sig = sign_reply(self.SECRET, "sess-1", 42, b"payload")
        assert verify_reply(self.SECRET, "sess-1", 42, b"payload", sig)

    @pytest.mark.parametrize(
        "session,seq,payload",
        [("sess-2", 42, b"payload"), ("sess-1", 43, b"payload"), ("sess-1", 42, b"other")],
    )
    def test_any_field_change_invalidates(self, session, seq, payload):
        sig = sign_reply(self.SECRET, "sess-1", 42, b"payload")
        assert not verify_reply(self.SECRET, session, seq, payload, sig)

    def test_key_binds(self):
        sig = sign_reply(self.SECRET, "sess-1", 42, b"payload")
        assert not verify_reply(b"\x08" * 32, "sess-1", 42, b"payload", sig)


class TestResumptionTickets:
    SECRET = b"\x05" * 32

    def test_round_trip(self):
        doc = {"session_id": "s1", "tenant_id": "acme", "version": 3}
        ticket = seal_ticket(self.SECRET, doc)
        assert ticket.startswith("f2tkt1.")
        assert open_ticket(self.SECRET, ticket) == doc

    def test_rotation_invalidates(self):
        ticket = seal_ticket(self.SECRET, {"session_id": "s1"})
        with pytest.raises(AuthError):
            open_ticket(b"\x06" * 32, ticket)

    @pytest.mark.parametrize(
        "ticket",
        ["", "nope", "f2tkt1.only-two", "f2tkt1.!!!.00", "f2tkt1..deadbeef"],
    )
    def test_malformed_rejected(self, ticket):
        with pytest.raises(AuthError):
            open_ticket(b"\x05" * 32, ticket)

    def test_tampered_body_rejected(self):
        ticket = seal_ticket(self.SECRET, {"session_id": "s1"})
        prefix, body, mac = ticket.split(".")
        forged = ".".join([prefix, body[:-1] + ("A" if body[-1] != "A" else "B"), mac])
        with pytest.raises(AuthError):
            open_ticket(self.SECRET, forged)


# ----------------------------------------------------------------------
# Warning category
# ----------------------------------------------------------------------
class TestStoreIntegrityWarning:
    def test_is_a_runtime_warning(self):
        assert issubclass(StoreIntegrityWarning, RuntimeWarning)

    def test_corrupt_snapshot_warns_with_the_category(self, tmp_path):
        from repro.api.protocol import ProtocolServer

        (tmp_path / "broken.f2t").write_bytes(b"\x00not a snapshot")
        with pytest.warns(StoreIntegrityWarning, match="broken"):
            server = ProtocolServer(storage_dir=tmp_path)
        assert server.table_ids(None) == []

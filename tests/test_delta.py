"""Tests of server-view deltas and the ``InsertDelta`` protocol path (PR 5).

The contract under test: with the materialiser's fresh-nonce retention, an
incremental insert's server view aligns against the previous one into a
small edit script; applying that script on the provider reproduces the new
view *byte-identically*; and the whole resumed flow (outsource, then
deltas) decrypts to exactly the same plaintext as a from-scratch outsource —
across both compute backends.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    DataOwner,
    InsertBatch,
    InsertDelta,
    LoopbackTransport,
    Message,
    ProtocolClient,
    ProtocolServer,
    RemoteOwnerSession,
    apply_view_delta,
    compute_view_delta,
    relation_digest,
)
from repro.api.auth import ErrorCode
from repro.backend import numpy_available
from repro.core.config import F2Config
from repro.exceptions import ProtocolError
from repro.relational.table import Relation
from repro.wire import WIRE_FORMS

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")


def make_owner(key_seed=42, alpha=0.25, seed=7, backend=None) -> DataOwner:
    return DataOwner.from_seed(
        key_seed, config=F2Config(alpha=alpha, seed=seed, backend=backend)
    )


def rel(rows, attrs=("A", "B")) -> Relation:
    return Relation(list(attrs), [list(row) for row in rows], name="t")


def ciphertext_rows(relation: Relation):
    return [tuple(str(value) for value in row) for row in relation.rows()]


# ----------------------------------------------------------------------
# The edit-script algebra
# ----------------------------------------------------------------------
class TestViewDelta:
    def roundtrip(self, old: Relation, new: Relation):
        delta = compute_view_delta(old, new)
        applied = apply_view_delta(old, delta)
        assert list(applied.rows()) == list(new.rows())
        assert applied.schema == new.schema
        return delta

    def test_identical_views_are_one_copy_segment(self):
        view = rel([["a", "1"], ["b", "2"], ["c", "3"]])
        delta = self.roundtrip(view, view.copy())
        assert delta.segments == [["c", 0, 3]]
        assert delta.literals is None
        assert delta.reuse_fraction == 1.0

    def test_append_only(self):
        old = rel([["a", "1"], ["b", "2"]])
        new = rel([["a", "1"], ["b", "2"], ["c", "3"]])
        delta = self.roundtrip(old, new)
        assert delta.segments == [["c", 0, 2], ["l", 1]]
        assert delta.literal_rows == 1

    def test_mid_change_and_tail_shift(self):
        # One row changes in place, the tail shifts by an insertion: the
        # alignment keeps both flanks as copies.
        old = rel([["a", "1"], ["b", "2"], ["c", "3"], ["d", "4"]])
        new = rel([["a", "1"], ["B", "X"], ["zz", "9"], ["c", "3"], ["d", "4"]])
        delta = self.roundtrip(old, new)
        assert delta.literal_rows == 2
        assert ["c", 2, 2] in delta.segments  # the shifted tail is one copy

    def test_reordered_rows_are_still_copies(self):
        old = rel([["a", "1"], ["b", "2"], ["c", "3"]])
        new = rel([["c", "3"], ["a", "1"], ["b", "2"]])
        delta = self.roundtrip(old, new)
        assert delta.literals is None

    def test_duplicate_rows_interchangeable(self):
        old = rel([["x", "1"], ["x", "1"], ["y", "2"]])
        new = rel([["y", "2"], ["x", "1"], ["x", "1"], ["x", "1"]])
        delta = self.roundtrip(old, new)
        # A fourth "x" copy may reference any equal base row.
        assert delta.literals is None

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            compute_view_delta(rel([["a", "1"]]), rel([["a"]], attrs=("A",)))

    def test_apply_rejects_wrong_base(self):
        old = rel([["a", "1"], ["b", "2"]])
        new = rel([["a", "1"], ["b", "2"], ["c", "3"]])
        delta = compute_view_delta(old, new)
        with pytest.raises(ProtocolError) as excinfo:
            apply_view_delta(new, delta)  # the wrong base (already updated)
        assert excinfo.value.code == ErrorCode.DELTA_MISMATCH.value
        # Same row count, different bytes: the digest still catches it.
        other = rel([["a", "1"], ["B", "2"]])
        with pytest.raises(ProtocolError) as excinfo:
            apply_view_delta(other, delta)
        assert excinfo.value.code == ErrorCode.DELTA_MISMATCH.value

    @pytest.mark.parametrize(
        "segments",
        [
            [["c", 0, 5]],  # copy overruns the base
            [["c", -1, 1]],  # negative start
            [["l", 3]],  # literal overrun
            [["q", 1]],  # unknown opcode
            [["c", 0]],  # malformed copy
            ["nope"],  # not a segment
        ],
    )
    def test_apply_rejects_malformed_segments(self, segments):
        base = rel([["a", "1"], ["b", "2"]])
        delta = compute_view_delta(base, base.copy())
        delta.segments = segments
        with pytest.raises(ProtocolError) as excinfo:
            apply_view_delta(base, delta)
        assert excinfo.value.code == ErrorCode.BAD_REQUEST.value

    def test_unconsumed_literals_rejected(self):
        base = rel([["a", "1"]])
        new = rel([["b", "2"]])
        delta = compute_view_delta(base, new)
        delta.segments = []  # ships a literal row no segment consumes
        with pytest.raises(ProtocolError):
            apply_view_delta(base, delta)

    def test_digest_sensitive_to_cells_and_schema(self):
        assert relation_digest(rel([["a", "1"]])) != relation_digest(rel([["a", "2"]]))
        assert relation_digest(rel([["a", "1"]])) != relation_digest(
            rel([["a", "1"]], attrs=("A", "C"))
        )
        # Cell/row boundaries are framed: ["ab","c"] != ["a","bc"].
        assert relation_digest(rel([["ab", "c"]])) != relation_digest(rel([["a", "bc"]]))


# ----------------------------------------------------------------------
# The wire form
# ----------------------------------------------------------------------
class TestInsertDeltaMessage:
    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_roundtrip(self, form):
        old = rel([["a", "1"], ["b", "2"], ["c", "3"]])
        new = rel([["a", "1"], ["x", "9"], ["c", "3"], ["d", "4"]])
        delta = compute_view_delta(old, new)
        message = InsertDelta(table_id="orders", delta=delta, batch_rows=2)
        decoded = Message.decode(message.encode(form))
        assert isinstance(decoded, InsertDelta)
        assert decoded.table_id == "orders"
        assert decoded.batch_rows == 2
        assert decoded.delta.segments == delta.segments
        assert decoded.delta.base_digest == delta.base_digest
        assert list(decoded.delta.literals.rows()) == list(delta.literals.rows())
        # The decoded delta applies exactly like the original.
        assert list(apply_view_delta(old, decoded.delta).rows()) == list(new.rows())

    @pytest.mark.parametrize("form", WIRE_FORMS)
    def test_roundtrip_without_literals(self, form):
        view = rel([["a", "1"]])
        delta = compute_view_delta(view, view.copy())
        decoded = Message.decode(InsertDelta(table_id="t", delta=delta).encode(form))
        assert decoded.delta.literals is None
        assert decoded.delta.segments == delta.segments


# ----------------------------------------------------------------------
# End to end through the protocol
# ----------------------------------------------------------------------
def incremental_batch(table: Relation, count: int, tag: str):
    """Rows that keep the MAS structure (reuse an existing duplicated
    combination, fresh unique Street values) so the insert runs
    incrementally rather than falling back to a full re-encryption."""
    from collections import Counter

    index = table.schema.index_of("Street")
    combos = Counter(
        tuple(value for position, value in enumerate(row) if position != index)
        for row in table.rows()
    )
    combo, _ = combos.most_common(1)[0]
    rows = []
    for offset in range(count):
        row = list(combo)
        row.insert(index, f"street-{tag}-{offset}")
        rows.append(row)
    return rows


class TestDeltaProtocolPath:
    def test_incremental_insert_ships_delta_and_matches_bytes(self, zipcode_table):
        server = ProtocolServer()
        owner = make_owner()
        session = RemoteOwnerSession(owner, ProtocolClient(LoopbackTransport(server)))
        session.outsource(zipcode_table)
        for round_index in range(3):
            session.insert_rows(incremental_batch(owner.plaintext, 2, f"r{round_index}"))
            assert owner.last_update_report.mode == "incremental"
            assert session.last_delta is not None, "expected the delta path"
            assert session.last_delta.reuse_fraction >= 0.5
            # The spliced store is byte-identical to the owner's full view.
            assert ciphertext_rows(server.store()) == ciphertext_rows(
                owner.server_view()
            )
        # And the decrypted state equals the plaintext exactly.
        matches = session.query("City", "Hoboken")
        assert list(matches.rows()) == list(
            owner.select_plaintext("City", "Hoboken").rows()
        )

    def test_mas_change_falls_back_to_full_insert(self, zipcode_table):
        server = ProtocolServer()
        owner = make_owner()
        session = RemoteOwnerSession(owner, ProtocolClient(LoopbackTransport(server)))
        session.outsource(zipcode_table)
        # Duplicating a full existing row makes previously unique projections
        # collide -> the MAS structure changes -> full pipeline fallback.
        session.insert_rows([list(zipcode_table.row(0))])
        assert owner.last_update_report.mode == "full"
        assert session.last_delta is None
        assert ciphertext_rows(server.store()) == ciphertext_rows(owner.server_view())

    def test_interleaved_writer_triggers_mismatch_fallback(self, zipcode_table):
        # Another writer replaces the stored view behind the session's back;
        # the next delta cannot apply (DELTA_MISMATCH) and the session
        # silently re-ships the full view instead.
        server = ProtocolServer()
        owner = make_owner()
        session = RemoteOwnerSession(owner, ProtocolClient(LoopbackTransport(server)))
        session.outsource(zipcode_table)

        intruder = make_owner(key_seed=5, seed=5)
        intruder.outsource(zipcode_table)
        ProtocolClient(LoopbackTransport(server)).outsource(
            "default", intruder.server_view()
        )

        session.insert_rows(incremental_batch(owner.plaintext, 2, "x"))
        assert session.last_delta is None  # fell back to InsertBatch
        assert ciphertext_rows(server.store()) == ciphertext_rows(owner.server_view())
        # Delta shipping resumes once the base is realigned.
        session.insert_rows(incremental_batch(owner.plaintext, 2, "y"))
        assert session.last_delta is not None

    def test_delta_measurably_smaller_on_wire(self, zipcode_table):
        owner = make_owner()
        session = RemoteOwnerSession(
            owner, ProtocolClient(LoopbackTransport(ProtocolServer()))
        )
        session.outsource(zipcode_table)
        base_view = owner.server_view()
        session.insert_rows(incremental_batch(owner.plaintext, 1, "small"))
        delta = session.last_delta
        assert delta is not None
        new_view = owner.server_view()
        delta_bytes = len(InsertDelta(table_id="t", delta=delta).encode("binary"))
        full_bytes = len(InsertBatch(table_id="t", relation=new_view).encode("binary"))
        assert delta_bytes < full_bytes / 2

    def test_delta_updates_can_be_disabled(self, zipcode_table):
        server = ProtocolServer()
        owner = make_owner()
        session = RemoteOwnerSession(
            owner,
            ProtocolClient(LoopbackTransport(server)),
            delta_updates=False,
        )
        session.outsource(zipcode_table)
        session.insert_rows(incremental_batch(owner.plaintext, 2, "z"))
        assert session.last_delta is None
        assert ciphertext_rows(server.store()) == ciphertext_rows(owner.server_view())


# ----------------------------------------------------------------------
# Property: resumed state == from-scratch outsource, across backends
# ----------------------------------------------------------------------
def seeded_urandom(seed: int):
    """A context patching the fresh-nonce source so runs are byte-comparable.

    Instance ciphertexts and artificial values already derive from the key
    and the config seed; only frequency-one (RandomCell) encryptions draw
    from ``os.urandom``.
    """
    import random as _random
    from unittest import mock

    rng = _random.Random(seed)
    return mock.patch(
        "repro.crypto.probabilistic.os.urandom",
        lambda count: bytes(rng.getrandbits(8) for _ in range(count)),
    )


def random_batches(table, seed: int, rounds: int = 2):
    """Batches recombining the table's own per-attribute values, so examples
    exercise both the incremental-delta path and the full fallback."""
    import random as _random

    rng = _random.Random(seed)
    return [
        [
            [rng.choice(table.column(attr)) for attr in table.attributes]
            for _ in range(rng.randint(1, 3))
        ]
        for _ in range(rounds)
    ]


def run_delta_flow(backend, key_seed, seed, alpha, table, batches, urandom_seed=1234):
    """Outsource ``table`` then insert each batch through the session's
    delta path; returns (stored ciphertext rows as text, decrypted rows,
    number of delta-shipped batches)."""
    with seeded_urandom(urandom_seed):
        server = ProtocolServer(backend=backend)
        owner = make_owner(key_seed=key_seed, alpha=alpha, seed=seed, backend=backend)
        session = RemoteOwnerSession(owner, ProtocolClient(LoopbackTransport(server)))
        session.outsource(table.copy())
        deltas = 0
        for batch in batches:
            session.insert_rows(batch)
            deltas += session.last_delta is not None
        stored = server.store()
        decrypted = owner.decrypt()
    return ciphertext_rows(stored), list(decrypted.rows()), deltas


class TestResumeEqualsScratch:
    @SLOW
    @given(st.integers(min_value=0, max_value=30), st.sampled_from([0.5, 0.34]))
    def test_delta_resume_equals_scratch_outsource(self, seed, alpha):
        from tests.conftest import make_random_table

        table = make_random_table(seed + 500, num_attributes=3)
        batches = random_batches(table, seed)
        stored, decrypted, _ = run_delta_flow(None, seed, seed, alpha, table, batches)

        # The decrypted resumed state equals the full plaintext exactly.
        full_plain = table.copy()
        for batch in batches:
            full_plain.extend(batch)
        assert decrypted == list(full_plain.rows())
        # The flow is deterministic under a seeded nonce source, and the
        # provider's spliced store is byte-identical to the owner's view —
        # the delta path introduced no divergence anywhere.
        replay = run_delta_flow(None, seed, seed, alpha, table, batches)
        assert replay[0] == stored

    @needs_numpy
    @SLOW
    @given(st.integers(min_value=0, max_value=12), st.sampled_from([0.5, 0.34]))
    def test_delta_flow_byte_identical_across_backends(self, seed, alpha):
        from tests.conftest import make_random_table

        table = make_random_table(seed + 700, num_attributes=3)
        batches = random_batches(table, seed)
        python_flow = run_delta_flow("python", seed, seed, alpha, table, batches)
        numpy_flow = run_delta_flow("numpy", seed, seed, alpha, table, batches)
        assert python_flow[0] == numpy_flow[0]  # stored ciphertext bytes
        assert python_flow[1] == numpy_flow[1]  # decrypted rows
        assert python_flow[2] == numpy_flow[2]  # same delta-vs-full decisions

"""A live outsourced database: incremental inserts after outsourcing.

The one-shot API of the paper encrypts a table once; a real outsourced
database keeps growing.  This example shows the scenario the incremental
API opens up:

1. the data owner outsources an address table and the provider indexes it,
2. new records keep arriving in small batches; the owner calls
   :meth:`repro.DataOwner.insert_rows`, which reuses the retained ECG plans
   and re-runs splitting-and-scaling only for the groups whose
   equivalence-class frequencies actually changed,
3. after every batch the provider re-discovers the FDs on the fresh server
   view and the owner verifies that dependency structure and
   alpha-security survived the update,
4. a final batch deliberately changes the MAS structure (it duplicates a
   complete record), demonstrating the automatic fallback to a full
   re-encryption.

Run with::

    python examples/live_outsourced_database.py [num_rows]
"""

from __future__ import annotations

import random
import sys

from repro import DataOwner, F2Config, ServiceProvider
from repro.datasets import generate_fd_table


def make_batch(rng: random.Random, template, count: int, start_index: int):
    """New address rows consistent with the planted Zipcode -> City rule."""
    rows = []
    for offset in range(count):
        zipcode, city, state = rng.choice(template)
        rows.append(
            [
                zipcode,
                city,
                state,
                f"Street-{start_index + offset}",
                f"extra-{start_index + offset}-1",
                f"extra-{start_index + offset}-2",
            ]
        )
    return rows


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    rng = random.Random(23)
    table = generate_fd_table(num_rows, num_zipcodes=10, num_extra_columns=2, seed=23)
    template = sorted({
        (table.value(row, "Zipcode"), table.value(row, "City"), table.value(row, "State"))
        for row in range(table.num_rows)
    })

    owner = DataOwner.from_seed(5, config=F2Config(alpha=0.34, split_factor=2, seed=5))
    provider = ServiceProvider(name="live-db-service")

    encrypted = owner.outsource(table)
    provider.receive(owner.server_view())
    baseline = provider.discover_fds(max_lhs_size=2)
    print(
        f"[owner]  outsourced {table.num_rows} rows -> {encrypted.num_rows} ciphertext rows; "
        f"provider sees {len(baseline.fds)} FDs"
    )

    next_resident = table.num_rows
    for batch_number in range(1, 4):
        batch = make_batch(rng, template, count=8 * batch_number, start_index=next_resident)
        next_resident += len(batch)
        encrypted = owner.insert_rows(batch)
        report = owner.last_update_report
        provider.receive(owner.server_view())
        discovery = provider.discover_fds(max_lhs_size=2)
        valid = owner.validate_fds(discovery.fds, max_lhs_size=2)
        secure = owner.audit_security().satisfied
        print(
            f"[owner]  batch {batch_number}: +{report.batch_rows} rows ({report.mode}; "
            f"groups reused={report.groups_reused} replanned={report.groups_replanned} "
            f"added={report.groups_added}) -> {encrypted.num_rows} ciphertext rows; "
            f"FDs valid={valid}, alpha-secure={secure}"
        )
        if not (valid and secure):
            raise SystemExit("incremental update broke an F2 guarantee")

    # A duplicate of an existing record makes the full attribute set
    # non-unique, which changes the MAS structure -> full re-encryption.
    duplicate = list(owner.plaintext.row(0))
    encrypted = owner.insert_rows([duplicate])
    report = owner.last_update_report
    provider.receive(owner.server_view())
    discovery = provider.discover_fds(max_lhs_size=2)
    valid = owner.validate_fds(discovery.fds, max_lhs_size=2)
    print(
        f"[owner]  duplicate-record batch triggered mode={report.mode} "
        f"(reason={report.reason}); FDs valid={valid}"
    )

    recovered = owner.decrypt()
    roundtrip = sorted(map(tuple, recovered.rows())) == sorted(
        tuple(map(str, row)) for row in owner.plaintext.rows()
    )
    print(f"[owner]  decryption round-trip over {recovered.num_rows} rows: {roundtrip}")
    if not (valid and roundtrip and report.mode == "full"):
        raise SystemExit("live-database scenario failed")
    print("Live outsourced database example completed successfully.")


if __name__ == "__main__":
    main()

"""Outsourced FD discovery on a TPC-H-style Orders table.

This is the paper's motivating scenario (database-as-a-service): the data
owner holds an Orders table whose schema quality she wants a service provider
to analyse, but the order details are confidential.  The example shows the
complete round trip at a realistic (laptop) scale:

* generate the Orders table and encrypt it with F2,
* "ship" the ciphertext to the server (here: a CSV file on disk),
* the server loads the CSV, runs TANE, and returns the FDs it found,
* the owner verifies the returned FDs against her plaintext and reports the
  cost split (local encryption vs. what local discovery would have cost her).

Run with::

    python examples/outsourced_fd_discovery.py [num_rows]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro import F2Config, F2Scheme, KeyGen
from repro.datasets import generate_orders
from repro.fd import tane
from repro.fd.tane import tane_with_stats
from repro.relational.csvio import read_csv, write_csv


def owner_encrypts(num_rows: int, outbox: Path):
    """Data-owner side: generate, encrypt, and export the ciphertext CSV."""
    table = generate_orders(num_rows, seed=3)
    config = F2Config(alpha=0.25, split_factor=2, seed=3)
    scheme = F2Scheme(key=KeyGen.symmetric_from_seed(99), config=config)

    started = time.perf_counter()
    encrypted = scheme.encrypt(table)
    encryption_seconds = time.perf_counter() - started

    ciphertext_path = outbox / "orders_encrypted.csv"
    write_csv(encrypted.server_view(), ciphertext_path)
    print(
        f"[owner]  encrypted {table.num_rows} rows -> {encrypted.num_rows} ciphertext rows "
        f"in {encryption_seconds:.2f}s; wrote {ciphertext_path.name}"
    )
    return table, scheme, encrypted, ciphertext_path, encryption_seconds


def server_discovers(ciphertext_path: Path):
    """Service-provider side: load the ciphertext and discover FDs with TANE."""
    server_table = read_csv(ciphertext_path)
    result = tane_with_stats(server_table, max_lhs_size=4)
    print(
        f"[server] discovered {len(result.fds)} FDs on the ciphertext "
        f"in {result.elapsed_seconds:.2f}s ({server_table.num_rows} rows)"
    )
    return result


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    with tempfile.TemporaryDirectory(prefix="f2-outsourcing-") as workdir:
        outbox = Path(workdir)
        table, scheme, encrypted, ciphertext_path, encryption_seconds = owner_encrypts(
            num_rows, outbox
        )
        server_result = server_discovers(ciphertext_path)

        # Owner-side verification: are the returned FDs exactly the FDs of D?
        # (The server returns dependencies over ciphertext *values*; their
        # attribute structure is what the owner consumes, e.g. for
        # normalisation, so the comparison is on the dependency sets.)
        local = tane_with_stats(table, max_lhs_size=4)
        preserved = local.fds.equivalent_to(server_result.fds)
        print(f"[owner]  returned FDs match the plaintext FDs: {preserved}")
        print(
            f"[owner]  cost of outsourcing (encrypt once): {encryption_seconds:.2f}s; "
            f"cost of discovering locally instead: {local.elapsed_seconds:.2f}s"
        )
        print("[owner]  dependencies usable for schema refinement:")
        for fd in list(local.fds)[:8]:
            print(f"           {fd}")
        if not preserved:
            raise SystemExit("FD preservation failed")
        print("Outsourced FD discovery example completed successfully.")


if __name__ == "__main__":
    main()

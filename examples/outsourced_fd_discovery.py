"""Outsourced FD discovery on a TPC-H-style Orders table.

This is the paper's motivating scenario (database-as-a-service), driven
through the protocol API: a :class:`repro.DataOwner` holds an Orders table
whose schema quality she wants a :class:`repro.ServiceProvider` to analyse,
but the order details are confidential.  The example shows the complete
round trip at a realistic (laptop) scale:

* the owner generates the Orders table and outsources it with F2,
* the ciphertext is "shipped" to the server (here: a CSV file on disk),
* the provider loads the CSV, runs TANE, and returns the FDs it found,
* the owner validates the returned FDs against her plaintext and reports the
  cost split (local encryption vs. what local discovery would have cost her),
  using the stage timings recorded by the pipeline hooks.

Run with::

    python examples/outsourced_fd_discovery.py [num_rows]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import DataOwner, F2Config, ServiceProvider, StageRecorder
from repro.datasets import generate_orders
from repro.fd.tane import tane_with_stats
from repro.relational.csvio import read_csv, write_csv


def owner_encrypts(num_rows: int, outbox: Path):
    """Data-owner side: generate, outsource, and export the ciphertext CSV."""
    table = generate_orders(num_rows, seed=3)
    recorder = StageRecorder()
    owner = DataOwner.from_seed(
        99, config=F2Config(alpha=0.25, split_factor=2, seed=3), hooks=[recorder]
    )
    encrypted = owner.outsource(table)

    ciphertext_path = outbox / "orders_encrypted.csv"
    write_csv(owner.server_view(), ciphertext_path)
    print(
        f"[owner]  encrypted {table.num_rows} rows -> {encrypted.num_rows} ciphertext rows "
        f"in {recorder.total_seconds:.2f}s; wrote {ciphertext_path.name}"
    )
    stage_split = ", ".join(
        f"{record.stage}={record.seconds:.2f}s" for record in recorder.records
    )
    print(f"[owner]  stage split: {stage_split}")
    return owner, ciphertext_path, recorder.total_seconds


def server_discovers(ciphertext_path: Path):
    """Service-provider side: load the ciphertext and discover FDs with TANE."""
    provider = ServiceProvider(name="discovery-service")
    provider.receive(read_csv(ciphertext_path))
    result = provider.discover_fds(max_lhs_size=4)
    print(
        f"[server] discovered {len(result.fds)} FDs on the ciphertext "
        f"in {result.elapsed_seconds:.2f}s ({provider.num_rows} rows)"
    )
    return result


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    with tempfile.TemporaryDirectory(prefix="f2-outsourcing-") as workdir:
        outbox = Path(workdir)
        owner, ciphertext_path, encryption_seconds = owner_encrypts(num_rows, outbox)
        server_result = server_discovers(ciphertext_path)

        # Owner-side verification: are the returned FDs exactly the FDs of D?
        # (The server returns dependencies over ciphertext *values*; their
        # attribute structure is what the owner consumes, e.g. for
        # normalisation, so the comparison is on the dependency sets.)
        local = tane_with_stats(owner.plaintext, max_lhs_size=4)
        preserved = local.fds.equivalent_to(server_result.fds)
        print(f"[owner]  returned FDs match the plaintext FDs: {preserved}")
        print(
            f"[owner]  cost of outsourcing (encrypt once): {encryption_seconds:.2f}s; "
            f"cost of discovering locally instead: {local.elapsed_seconds:.2f}s"
        )
        print("[owner]  dependencies usable for schema refinement:")
        for fd in list(local.fds)[:8]:
            print(f"           {fd}")
        if not preserved:
            raise SystemExit("FD preservation failed")
        print("Outsourced FD discovery example completed successfully.")


if __name__ == "__main__":
    main()

"""Frequency-analysis attack demo: deterministic encryption vs F2.

The paper's central security claim is that F2 defeats the frequency-analysis
attack, even against an adversary that knows the algorithm (Kerckhoffs's
principle), with success probability bounded by alpha.  This example makes the
claim concrete:

* it encrypts the same Orders table with a deterministic cell cipher and with
  F2,
* plays the paper's security game (Section 2.4) many times against both, with
  the basic frequency-matching adversary and the 4-step Kerckhoffs adversary,
* prints the empirical success rates next to the alpha bound and the
  random-guessing floor.

Run with::

    python examples/attack_resistance.py [num_rows]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro import F2Config, F2Scheme, KeyGen
from repro.attack import FrequencyAttack, KerckhoffsAttack, evaluate_attack
from repro.attack.evaluate import samples_from_deterministic, samples_from_encrypted
from repro.crypto.deterministic import DeterministicCipher
from repro.datasets import generate_orders


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    alpha = 0.25
    table = generate_orders(num_rows, seed=11)
    # Attack the skewed, moderate-cardinality columns — the ones frequency
    # analysis is actually good at.
    targets = ["Clerk", "OrderDate"]
    targets = [t for t in targets if 3 <= len(table.distinct_values(t)) <= num_rows // 2]
    domains = {attribute: len(table.distinct_values(attribute)) for attribute in targets}
    random_guess = sum(1 / size for size in domains.values()) / len(domains)
    print(f"Orders table: {num_rows} rows; attacked attributes: {targets} (domains {domains})")

    # --- Baseline: deterministic encryption ------------------------------
    deterministic = DeterministicCipher(KeyGen.symmetric_from_seed(1))
    det_view, det_samples = samples_from_deterministic(table, deterministic, targets)

    # --- F2 ----------------------------------------------------------------
    scheme = F2Scheme(
        key=KeyGen.symmetric_from_seed(2), config=F2Config(alpha=alpha, split_factor=2, seed=5)
    )
    encrypted = scheme.encrypt(table)
    f2_samples = samples_from_encrypted(encrypted, table, targets)

    print(f"\n{'scheme':15s} {'adversary':22s} {'success':>9s}   notes")
    rows = []
    for attack in (FrequencyAttack(), FrequencyAttack("rank"), KerckhoffsAttack()):
        outcome = evaluate_attack(attack, det_samples, table, det_view, trials=600, seed=3)
        rows.append(("deterministic", attack.name, outcome.success_rate, "full frequency leak"))
    for attack in (FrequencyAttack(), FrequencyAttack("rank"), KerckhoffsAttack()):
        outcome = evaluate_attack(attack, f2_samples, table, encrypted.relation, trials=600, seed=3)
        rows.append(("F2", attack.name, outcome.success_rate, f"bound max(alpha, 1/domain) ~ {max(alpha, random_guess):.2f}"))
    for scheme_name, attack_name, success, note in rows:
        print(f"{scheme_name:15s} {attack_name:22s} {success:9.3f}   {note}")

    print(f"\nrandom-guessing floor over the attacked columns: {random_guess:.3f}")
    print(f"alpha used for F2: {alpha}")

    det_best = max(success for scheme_name, _, success, _ in rows if scheme_name == "deterministic")
    f2_worst = max(success for scheme_name, _, success, _ in rows if scheme_name == "F2")
    print(f"\nBest attack vs deterministic: {det_best:.3f}; best attack vs F2: {f2_worst:.3f}")
    if f2_worst >= det_best:
        raise SystemExit("expected F2 to strictly reduce the attack success")
    print("Attack-resistance example completed successfully.")


if __name__ == "__main__":
    main()

"""The authenticated multi-tenant service, end to end over a real socket.

PR 5 turns the anonymous two-party protocol into a versioned multi-tenant
service.  This example runs the full workflow:

1. an **admin** mints capability credentials in a tenant registry: an
   ``owner`` key and a read-only ``analyst`` key for tenant *acme*, and an
   ``owner`` key for tenant *globex*,
2. a provider starts as a localhost TCP server with the registry attached —
   every request must now arrive inside a signed session frame
   (``Hello`` handshake, HMAC-SHA256 over session id + sequence + payload),
3. each tenant's owner outsources a table into its own namespace; the
   namespaces are invisible to each other even under identical table ids,
4. acme's owner appends rows incrementally: the session ships an
   ``InsertDelta`` — only the new/changed ciphertext rows travel, measured
   here against the full-view baseline — and the provider splices it under
   the table's write lock after a base-digest check,
5. acme's *analyst* credential serves boolean queries (and nothing else:
   a mutation attempt is rejected with the stable ``FORBIDDEN`` code),
6. finally the admin rotates acme's owner key: the live session dies on its
   next frame with ``AUTH_FAILED``, and a re-handshake with the new
   credential resumes service.

Run with::

    python examples/multi_tenant_service.py [num_rows]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import (
    DataOwner,
    F2Config,
    ProtocolClient,
    RemoteOwnerSession,
    SocketProtocolServer,
    SocketTransport,
    TenantRegistry,
)
from repro.api import InsertBatch, InsertDelta
from repro.api.protocol import ProtocolServer
from repro.datasets import generate_fd_table
from repro.exceptions import AuthError, ProtocolError


def check(condition: bool, label: str) -> None:
    if not condition:
        print(f"FAILED: {label}")
        raise SystemExit(1)
    print(f"ok: {label}")


def incremental_batch(table, count: int, tag: str):
    """Rows reusing an existing duplicated combination (fresh Street), so
    the insert stays on the incremental/delta path."""
    from collections import Counter

    index = table.schema.index_of("Street")
    combos = Counter(
        tuple(value for position, value in enumerate(row) if position != index)
        for row in table.rows()
    )
    combo, _ = combos.most_common(1)[0]
    rows = []
    for offset in range(count):
        row = list(combo)
        row.insert(index, f"street-{tag}-{offset}")
        rows.append(row)
    return rows


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 200

    with tempfile.TemporaryDirectory(prefix="f2-tenants-") as tmp:
        storage = Path(tmp)

        # -- 1: the admin mints capability credentials -----------------
        registry = TenantRegistry(storage / "tenants.json")
        acme_owner_cred = registry.mint("acme", "owner")
        acme_analyst_cred = registry.mint("acme", "analyst")
        globex_owner_cred = registry.mint("globex", "owner")
        print("credential (hand to acme out of band):")
        print(" ", acme_owner_cred.to_token()[:48] + "...")

        # -- 2: an authenticated provider ------------------------------
        server = ProtocolServer(storage_dir=storage / "snapshots", tenants=registry)
        with SocketProtocolServer(server) as sock_server:
            sock_server.serve_in_background()
            port = sock_server.port
            print(f"provider listening on 127.0.0.1:{port} (tenant auth required)")

            def connect() -> ProtocolClient:
                return ProtocolClient(SocketTransport(port=port))

            try:
                connect().discover("default")
            except AuthError as exc:
                check(exc.code == "AUTH_REQUIRED", "anonymous requests rejected")

            # -- 3: two tenants outsource into their own namespaces ----
            acme = DataOwner.from_seed(21, config=F2Config(alpha=0.34, seed=21))
            acme_table = generate_fd_table(
                num_rows, num_zipcodes=8, num_extra_columns=1, seed=21
            )
            acme_session = RemoteOwnerSession(
                acme, connect(), table_id="orders", credential=acme_owner_cred
            )
            shipped = acme_session.outsource(acme_table)
            print(f"acme outsourced {shipped} ciphertext rows as 'orders'")

            globex = DataOwner.from_seed(22, config=F2Config(alpha=0.34, seed=22))
            globex_session = RemoteOwnerSession(
                globex,
                connect(),
                table_id="orders",  # the same table id, a different world
                credential=globex_owner_cred,
            )
            globex_session.outsource(
                generate_fd_table(num_rows // 2, num_zipcodes=5, seed=22)
            )
            check(
                sorted(server.table_ids(None)) == ["acme/orders", "globex/orders"],
                "tables live in per-tenant namespaces",
            )

            discovery = acme_session.discover_fds(max_lhs_size=2)
            check(discovery.parameters["validated"] is True, "acme FDs validated")

            # -- 4: delta inserts --------------------------------------
            acme_session.insert_rows(incremental_batch(acme.plaintext, 3, "d1"))
            delta = acme_session.last_delta
            check(delta is not None, "incremental insert shipped as a delta")
            delta_bytes = len(InsertDelta(table_id="orders", delta=delta).encode("binary"))
            full_bytes = len(
                InsertBatch(table_id="orders", relation=acme.server_view()).encode("binary")
            )
            print(
                f"delta on the wire: {delta_bytes} bytes vs {full_bytes} for the "
                f"full view ({delta_bytes / full_bytes:.1%}); "
                f"{delta.literal_rows} literal rows, "
                f"{delta.reuse_fraction:.1%} of the view reused"
            )
            stored = server.store("orders", tenant_id="acme")
            check(
                [str(v) for row in stored.rows() for v in row]
                == [str(v) for row in acme.server_view().rows() for v in row],
                "spliced store is byte-identical to the owner's view",
            )

            # -- 5: the read-only analyst credential -------------------
            analyst_owner = DataOwner.from_seed(21, config=F2Config(alpha=0.34, seed=21))
            analyst_owner.outsource(acme_table)  # seeded replica, no push
            analyst_owner.insert_rows(incremental_batch(analyst_owner.plaintext, 3, "d1"))
            analyst_session = RemoteOwnerSession(
                analyst_owner,
                connect(),
                table_id="orders",
                credential=acme_analyst_cred,
            )
            zipcode = analyst_owner.plaintext.value(0, "Zipcode")
            matches = analyst_session.query("Zipcode", zipcode)
            expected = analyst_owner.select_plaintext("Zipcode", zipcode)
            check(
                list(matches.rows()) == list(expected.rows()),
                "analyst query equals the plaintext selection",
            )
            try:
                analyst_session.client.outsource("orders", analyst_owner.server_view())
                check(False, "analyst mutation must be rejected")
            except AuthError as exc:
                check(exc.code == "FORBIDDEN", "analyst mutations rejected")
            try:
                analyst_session.client.discover("nonexistent")
            except ProtocolError as exc:
                check(exc.code == "UNKNOWN_TABLE", "unknown tables stay invisible")

            # -- 6: key rotation ---------------------------------------
            new_owner_cred = registry.rotate("acme", "owner")
            try:
                acme_session.discover_fds()
                check(False, "rotated key must kill the live session")
            except AuthError as exc:
                check(exc.code == "AUTH_FAILED", "rotation kills live sessions")
            acme_session.client.authenticate(new_owner_cred)
            refreshed = acme_session.discover_fds(max_lhs_size=2)
            check(
                refreshed.parameters["validated"] is True,
                "re-handshake with the rotated credential resumes service",
            )
            acme_session.close()
            globex_session.close()
            analyst_session.close()

    print("multi-tenant service example completed successfully")


if __name__ == "__main__":
    main()

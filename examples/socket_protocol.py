"""The full wire protocol over a real TCP socket, end to end.

The paper's Figure-2 workflow is a *network* protocol; this example runs it
as one:

1. a service provider starts as a localhost TCP protocol server with a
   snapshot directory (what ``f2-repro serve`` runs),
2. the data owner connects through a :class:`repro.SocketTransport`,
   encrypts her table locally, and ships only the ciphertext server view,
3. the provider discovers the FDs on the received ciphertext; the FD set and
   the owner's validation verdict are verified identical to an in-process
   session over the same seeded owner, and the stored *instance* ciphertexts
   (every MAS-covered column) are verified byte-identical — the only cells
   that may differ are the fresh random nonces of frequency-one values,
   which are drawn from OS entropy per run,
4. the owner appends a batch incrementally, then derives equality search
   tokens from her retained split plans; the keyless provider filters
   ciphertext rows against them and the decrypted matches reproduce the
   plaintext selections exactly,
5. the server is shut down and a *new* one is started over the same
   snapshot directory: it resumes serving the persisted store, and a fresh
   discovery returns the same FDs — no re-outsourcing needed.

Run with::

    python examples/socket_protocol.py [num_rows]
"""

from __future__ import annotations

import sys
import tempfile

from repro import (
    DataOwner,
    F2Config,
    ProtocolClient,
    RemoteOwnerSession,
    ServiceProvider,
    SocketProtocolServer,
    SocketTransport,
    run_protocol,
)
from repro.api.protocol import ProtocolServer
from repro.datasets import generate_fd_table


def make_owner() -> DataOwner:
    return DataOwner.from_seed(11, config=F2Config(alpha=0.34, split_factor=2, seed=11))


def ciphertext_rows(relation):
    return [tuple(str(value) for value in row) for row in relation.rows()]


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    table = generate_fd_table(num_rows, num_zipcodes=8, num_extra_columns=1, seed=11)
    print(f"plaintext: {table.num_rows} rows x {table.num_attributes} attributes")

    # In-process reference run (same seeds => same ciphertexts).
    reference_provider = ServiceProvider()
    reference = run_protocol(make_owner(), reference_provider, table)
    print(f"in-process reference: {len(reference.fds)} FDs, "
          f"validated={reference.parameters['validated']}")

    with tempfile.TemporaryDirectory(prefix="f2-snapshots-") as storage:
        with SocketProtocolServer(ProtocolServer(storage_dir=storage)) as sock_server:
            sock_server.serve_in_background()
            print(f"provider listening on {sock_server.host}:{sock_server.port}")

            owner = make_owner()
            session = RemoteOwnerSession(
                owner, ProtocolClient(SocketTransport(port=sock_server.port))
            )
            shipped = session.outsource(table)
            print(f"shipped {shipped} ciphertext rows over TCP")

            result = session.discover_fds()
            same_fds = result.fds == reference.fds
            queryable = sorted(owner.queryable_attributes())
            stored = sock_server.protocol_server.store()
            same_instance_bytes = all(
                ciphertext_rows(stored.project([attribute]))
                == ciphertext_rows(reference_provider.table.project([attribute]))
                for attribute in queryable
            )
            print(f"socket discovery: {len(result.fds)} FDs, "
                  f"validated={result.parameters['validated']}")
            print(f"identical to in-process session: fds={same_fds} "
                  f"instance-ciphertext columns={same_instance_bytes}")
            if not (same_fds and same_instance_bytes and result.parameters["validated"]):
                raise SystemExit("socket protocol diverged from the in-process session")

            # Incremental insert over the wire: the owner re-encrypts
            # locally (reusing her retained plans) and replaces the view.
            batch = [list(table.row(index % table.num_rows)) for index in range(2)]
            for offset, row in enumerate(batch):
                row[table.schema.index_of("Street")] = f"Street-new-{offset}"
            shipped = session.insert_rows(batch)
            result = session.discover_fds()
            print(f"inserted {len(batch)} rows (view now {shipped} ciphertext rows); "
                  f"re-discovery validated={result.parameters['validated']}")
            if not result.parameters["validated"]:
                raise SystemExit("post-insert discovery failed validation")

            # Token-based equality queries on every MAS-covered attribute.
            queried = 0
            for attribute in queryable:
                value = table.value(0, attribute)
                matches = session.query(attribute, value)
                expected = owner.select_plaintext(attribute, value)
                if list(matches.rows()) != list(expected.rows()):
                    raise SystemExit(f"query mismatch on {attribute}={value!r}")
                queried += 1
                print(f"query {attribute} = {value!r}: {matches.num_rows} rows "
                      "(decrypted == plaintext selection)")
            if not queried:
                raise SystemExit("expected at least one queryable attribute")
            session.close()

        # Restart: a new server over the same snapshot directory resumes
        # serving the persisted ciphertext store.
        with SocketProtocolServer(ProtocolServer(storage_dir=storage)) as revived:
            revived.serve_in_background()
            client = ProtocolClient(SocketTransport(port=revived.port))
            restored = revived.protocol_server.table_ids()
            rediscovered = client.discover("default")
            print(f"restarted server restored tables {restored}; "
                  f"re-discovery returns {len(rediscovered.fds)} FDs")
            if rediscovered.fds != result.fds:
                raise SystemExit("restarted server lost the store")
            client.close()

    print("example completed successfully")


if __name__ == "__main__":
    main()

"""Data-cleaning workflow driven by outsourced FD discovery.

The paper motivates FD preservation with FD-based data cleaning (Section 1):
the service provider discovers the dependency structure of the outsourced
(encrypted) data, and the data owner uses the returned dependencies as
cleaning rules.  Frequency hiding means the server learns *which rules hold*,
never *which concrete records* are inconsistent — locating and fixing the
dirty records stays on the owner's side.

The example:

1. generates a Zipcode/City/State address table, plants the rule
   ``Zipcode -> City`` implicitly in the data, then injects a few typos that
   break it,
2. encrypts the table with F2 and ships the ciphertext to the service,
3. the service discovers the dependencies of the ciphertext (exactly those of
   the dirty plaintext, by Theorem 3.7) and returns them,
4. the owner compares the returned dependencies against the rules she expects
   from domain knowledge; any expected rule that is *missing* signals dirty
   data, and she locates the offending records locally.

Run with::

    python examples/data_cleaning_service.py [num_rows]
"""

from __future__ import annotations

import random
import sys

from repro import F2Config, F2Scheme, KeyGen, Relation
from repro.datasets import generate_fd_table
from repro.fd import tane, violating_row_pairs
from repro.fd.fd import FunctionalDependency


def build_dirty_table(num_rows: int, num_errors: int, seed: int = 0) -> tuple[Relation, set[int]]:
    """A Zipcode/City/State table with a few planted rule violations."""
    table = generate_fd_table(num_rows, num_zipcodes=12, num_extra_columns=2, seed=seed)
    rng = random.Random(seed)
    dirty_rows: set[int] = set()
    while len(dirty_rows) < num_errors:
        row = rng.randrange(table.num_rows)
        table.set_value(row, "City", f"Typo{rng.randint(1, 99)}")
        dirty_rows.add(row)
    return table, dirty_rows


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    table, dirty_rows = build_dirty_table(num_rows, num_errors=4, seed=9)
    expected_rules = [
        FunctionalDependency(["Zipcode"], "City"),
        FunctionalDependency(["Zipcode"], "State"),
        FunctionalDependency(["City"], "State"),
    ]
    print(f"Address table with {num_rows} rows; {len(dirty_rows)} dirty records planted")

    # --- Owner: encrypt and outsource ------------------------------------
    scheme = F2Scheme(
        key=KeyGen.symmetric_from_seed(17), config=F2Config(alpha=0.34, split_factor=2, seed=17)
    )
    encrypted = scheme.encrypt(table)
    server_view = encrypted.server_view()
    print(f"Encrypted to {encrypted.num_rows} ciphertext rows; shipped to the cleaning service")

    # --- Service: discover the dependency structure on ciphertext --------
    discovered = tane(server_view, max_lhs_size=2)
    print(f"[service] dependencies discovered on the ciphertext: {len(discovered)}")

    # --- Owner: interpret the returned dependencies ----------------------
    print("[owner]  expected cleaning rules vs. what the service confirmed:")
    broken_rules = []
    for rule in expected_rules:
        confirmed = discovered.implies(rule)
        print(f"           {str(rule):25s} confirmed={confirmed}")
        if not confirmed:
            broken_rules.append(rule)

    if not broken_rules:
        raise SystemExit("expected at least one rule to be broken by the planted typos")

    # Rules that the service could not confirm are violated somewhere in the
    # owner's data; she locates the offending records locally.
    flagged: set[int] = set()
    for rule in broken_rules:
        for first, second in violating_row_pairs(table, rule, limit=100):
            flagged.update((first, second))
    candidates = {
        row
        for row in flagged
        if any(row in pair for rule in broken_rules for pair in violating_row_pairs(table, rule))
    }
    found_dirty = candidates & dirty_rows
    print(f"[owner]  records flagged for repair: {len(candidates)}")
    print(f"[owner]  planted dirty records among them: {len(found_dirty)} / {len(dirty_rows)}")
    for row in sorted(found_dirty):
        record = table.row_dict(row)
        print(f"           row {row}: Zipcode={record['Zipcode']} City={record['City']}")

    if not found_dirty == dirty_rows:
        raise SystemExit("the owner failed to locate every planted dirty record")
    print("Data-cleaning example completed successfully.")


if __name__ == "__main__":
    main()

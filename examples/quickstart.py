"""Quickstart: encrypt a small table with F2 and verify the key properties.

This example walks through the full data-owner / service-provider workflow on
a tiny, human-readable address table:

1. the owner encrypts the table with F2 (no knowledge of its FDs needed),
2. the server discovers the functional dependencies on the *ciphertext*,
3. the owner checks they are exactly the FDs of the plaintext,
4. the owner verifies the alpha-security invariants and decrypts her data.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DataOwner, F2Config, Relation, ServiceProvider


def build_table() -> Relation:
    """A Zipcode/City table with the FD Zipcode -> City (and City -> Zipcode broken)."""
    rows = [
        ["07030", "Hoboken", "Washington St", "espresso"],
        ["07030", "Hoboken", "Hudson St", "filter"],
        ["07030", "Hoboken", "Garden St", "espresso"],
        ["07302", "Jersey City", "Grove St", "filter"],
        ["07302", "Jersey City", "Newark Ave", "espresso"],
        ["07310", "Jersey City", "Marin Blvd", "filter"],
        ["10001", "New York", "8th Ave", "espresso"],
        ["10001", "New York", "W 23rd St", "filter"],
    ]
    return Relation(["Zipcode", "City", "Street", "CoffeeOrder"], rows, name="addresses")


def main() -> None:
    table = build_table()
    print(f"Plaintext table: {table.num_rows} rows x {table.num_attributes} attributes")

    # --- Data owner: encrypt with F2 and outsource -----------------------
    config = F2Config(alpha=0.5, split_factor=2, seed=7)
    owner = DataOwner.from_seed(42, config=config)
    encrypted = owner.outsource(table)
    print(
        f"Encrypted table: {encrypted.num_rows} rows "
        f"({encrypted.num_rows - table.num_rows} artificial), "
        f"alpha = {config.alpha}, split factor = {config.split_factor}"
    )
    print(f"Maximal attribute sets found: {[str(mas) for mas in encrypted.masses]}")

    # --- Service provider: discover FDs on the ciphertext ---------------
    provider = ServiceProvider()
    provider.receive(owner.server_view())
    discovery = provider.discover_fds()
    print("\nFDs the server discovers on the ciphertext:")
    for fd in discovery.fds:
        print(f"  {fd}")

    # --- Data owner: validate the result --------------------------------
    preserved = owner.validate_fds(discovery.fds)
    print(f"\nFDs preserved exactly: {preserved}")

    security = owner.audit_security()
    print(f"Alpha-security structural check: {'OK' if security.satisfied else security.violations}")

    decrypted = owner.decrypt()
    roundtrip = sorted(map(tuple, decrypted.rows())) == sorted(
        tuple(map(str, row)) for row in table.rows()
    )
    print(f"Decryption round-trip: {roundtrip}")

    if not (preserved and security.satisfied and roundtrip):
        raise SystemExit("quickstart failed: one of the F2 guarantees did not hold")
    print("\nQuickstart completed successfully.")


if __name__ == "__main__":
    main()
